// Tests for the message-driven protocol endpoints: full sessions over
// perfect pipes and lossy/reordering channels, transport fragmentation,
// and exact control-plane byte accounting.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/endpoint.hpp"
#include "core/origin.hpp"
#include "core/session.hpp"
#include "util/random.hpp"
#include "wire/transport.hpp"

namespace icd::core {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

struct Fixture {
  static constexpr std::size_t kBlocks = 250;
  static constexpr std::size_t kBlockSize = 24;

  Fixture()
      : content(random_content(kBlocks * kBlockSize - 5, 42)),
        origin(content, kBlockSize,
               codec::DegreeDistribution::robust_soliton(kBlocks), 777) {}

  Peer make_peer(const std::string& name) const {
    return Peer(name, origin.parameters(),
                codec::DegreeDistribution::robust_soliton(kBlocks));
  }

  std::vector<std::uint8_t> content;
  OriginServer origin;
};

/// Drives a sender/receiver endpoint pair until the receiver decodes or
/// `max_rounds` pass; returns the rounds consumed.
std::size_t drive(SenderEndpoint& sender, ReceiverEndpoint& receiver,
                  std::size_t max_rounds) {
  receiver.start();
  std::size_t round = 0;
  for (; round < max_rounds && !receiver.complete(); ++round) {
    sender.tick();
    sender.send_symbol();
    receiver.tick();
  }
  return round;
}

// --- Transport fragmentation ----------------------------------------------

TEST(Transport, FragmentOverheadCoversWorstCaseEncoding) {
  // Transport::send slices oversized frames into chunks of
  // mtu - kFragmentOverhead bytes and relies on every resulting Fragment
  // frame fitting the MTU. Pin that invariant against the actual wire
  // encoding at worst-case header values, so growing the Fragment layout
  // without growing kFragmentOverhead fails here instead of silently
  // producing unsendable fragment trains.
  for (const std::size_t mtu :
       {wire::kFragmentOverhead + 1, std::size_t{64}, std::size_t{256},
        std::size_t{1024}, std::size_t{1500}, std::size_t{65536}}) {
    wire::Fragment fragment;
    fragment.sequence = std::numeric_limits<std::uint32_t>::max();
    fragment.index = std::numeric_limits<std::uint16_t>::max() - 1;
    fragment.total = std::numeric_limits<std::uint16_t>::max();
    fragment.data.assign(mtu - wire::kFragmentOverhead, 0xab);
    EXPECT_LE(wire::encode_frame(fragment).size(), mtu) << "mtu " << mtu;
  }
}

TEST(Transport, FragmentsOversizedFramesAndReassembles) {
  wire::Pipe pipe(/*mtu=*/128);
  std::size_t max_frame = 0;
  pipe.a().set_frame_observer(
      [&](const std::vector<std::uint8_t>& frame, bool) {
        max_frame = std::max(max_frame, frame.size());
      });
  sketch::MinwiseSketch sketch(1 << 20, 128);  // ~1 KB serialized
  for (std::uint64_t i = 0; i < 500; ++i) sketch.update(i * 31);
  ASSERT_TRUE(pipe.a().send(wire::SketchMessage{sketch}));

  const auto& stats = pipe.a().stats();
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_GT(stats.frames_sent, 8u);  // ~1 KB over a 128-byte MTU
  EXPECT_LE(max_frame, 128u);

  const auto received = pipe.b().receive();
  ASSERT_TRUE(received.has_value());
  ASSERT_TRUE(std::holds_alternative<wire::SketchMessage>(*received));
  EXPECT_EQ(std::get<wire::SketchMessage>(*received).sketch.minima(),
            sketch.minima());
  EXPECT_FALSE(pipe.b().receive().has_value());
  EXPECT_EQ(pipe.b().stats().messages_received, 1u);
}

TEST(Transport, FragmentsSurviveReordering) {
  wire::ChannelConfig config;
  config.mtu = 100;
  config.reorder_rate = 0.5;
  config.seed = 11;
  wire::ChannelLink link(config);

  sketch::MinwiseSketch sketch(1 << 20, 64);
  for (std::uint64_t i = 0; i < 100; ++i) sketch.update(i * 13);
  ASSERT_TRUE(link.a().send(wire::SketchMessage{sketch}));

  std::optional<wire::Message> received;
  for (int i = 0; i < 100 && !received; ++i) received = link.b().receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(std::get<wire::SketchMessage>(*received).sketch.minima(),
            sketch.minima());
}

TEST(Transport, SendFailsWhenMtuCannotFitAFragment) {
  wire::Pipe pipe(/*mtu=*/8);
  sketch::MinwiseSketch sketch(1 << 20, 64);
  EXPECT_FALSE(pipe.a().send(wire::SketchMessage{sketch}));
  EXPECT_EQ(pipe.a().stats().frames_sent, 0u);
}

TEST(Transport, LostFragmentLosesMessageWithoutCrash) {
  wire::ChannelConfig config;
  config.mtu = 100;
  config.loss_rate = 0.3;
  config.seed = 3;
  wire::ChannelLink link(config);

  sketch::MinwiseSketch sketch(1 << 20, 64);
  for (std::uint64_t i = 0; i < 200; ++i) sketch.update(i * 7);
  // A ~7-fragment message survives a 30% frame loss whole with p ~ 0.08,
  // so repeated sends deliver an intact copy while most attempts are
  // (harmlessly) shredded.
  bool delivered = false;
  for (int attempt = 0; attempt < 500 && !delivered; ++attempt) {
    ASSERT_TRUE(link.a().send(wire::SketchMessage{sketch}));
    while (auto message = link.b().receive()) {
      if (std::holds_alternative<wire::SketchMessage>(*message)) {
        EXPECT_EQ(std::get<wire::SketchMessage>(*message).sketch.minima(),
                  sketch.minima());
        delivered = true;
      }
    }
  }
  EXPECT_TRUE(delivered);
}

// --- Endpoint sessions over lossy links -----------------------------------

class LossyStrategies : public ::testing::TestWithParam<overlay::Strategy> {};

TEST_P(LossyStrategies, CompletesUnderLossAndReordering) {
  Fixture f;
  Peer sender_peer = f.make_peer("sender");
  Peer receiver_peer = f.make_peer("receiver");
  for (int i = 0; i < 280; ++i) sender_peer.receive_encoded(f.origin.next());
  for (int i = 0; i < 150; ++i) receiver_peer.receive_encoded(f.origin.next());

  wire::ChannelConfig link_config;
  link_config.loss_rate = 0.08;  // >= 5% loss, both directions
  link_config.reorder_rate = 0.1;
  link_config.mtu = 1024;
  link_config.seed = 0xfeed + static_cast<std::uint64_t>(GetParam());
  wire::ChannelLink link(link_config);

  SessionOptions options;
  options.strategy = GetParam();
  options.requested_symbols = 260;
  SenderEndpoint sender(sender_peer, options, link.a());
  ReceiverEndpoint receiver(receiver_peer, options, link.b());

  drive(sender, receiver, /*max_rounds=*/8000);
  ASSERT_TRUE(receiver.complete()) << strategy_name(GetParam());
  EXPECT_EQ(receiver_peer.content(f.content.size()), f.content);
  // Loss means some sent symbols never arrived.
  EXPECT_GE(sender.symbols_sent(), receiver.symbols_received());
  EXPECT_GT(link.a_to_b().dropped() + link.b_to_a().dropped(), 0u);
}

TEST_P(LossyStrategies, CompletesUnderHeavyLoss) {
  Fixture f;
  Peer sender_peer = f.make_peer("sender");
  Peer receiver_peer = f.make_peer("receiver");
  for (int i = 0; i < 300; ++i) sender_peer.receive_encoded(f.origin.next());
  for (int i = 0; i < 140; ++i) receiver_peer.receive_encoded(f.origin.next());

  wire::ChannelConfig link_config;
  link_config.loss_rate = 0.2;  // the top of the 5-20% band
  link_config.reorder_rate = 0.2;
  link_config.mtu = 1024;
  link_config.seed = 0xbeef + static_cast<std::uint64_t>(GetParam());
  wire::ChannelLink link(link_config);

  SessionOptions options;
  options.strategy = GetParam();
  options.requested_symbols = 280;
  options.handshake_retry_ticks = 4;
  SenderEndpoint sender(sender_peer, options, link.a());
  ReceiverEndpoint receiver(receiver_peer, options, link.b());

  drive(sender, receiver, /*max_rounds=*/12000);
  ASSERT_TRUE(receiver.complete()) << strategy_name(GetParam());
  EXPECT_EQ(receiver_peer.content(f.content.size()), f.content);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, LossyStrategies,
                         ::testing::ValuesIn(overlay::kAllStrategies));

TEST(Endpoint, EmptySenderServesNothingInsteadOfThrowing) {
  Fixture f;
  Peer sender_peer = f.make_peer("empty-sender");
  Peer receiver_peer = f.make_peer("receiver");

  wire::Pipe pipe(1024);
  SessionOptions options;
  SenderEndpoint sender(sender_peer, options, pipe.a());
  ReceiverEndpoint receiver(receiver_peer, options, pipe.b());

  receiver.start();
  for (int i = 0; i < 8; ++i) {
    sender.tick();
    EXPECT_FALSE(sender.send_symbol());
    receiver.tick();
  }
  EXPECT_EQ(sender.symbols_sent(), 0u);
  EXPECT_EQ(receiver.symbols_received(), 0u);
}

TEST(Endpoint, HandshakeRetriesThroughHeavyControlLoss) {
  Fixture f;
  Peer sender_peer = f.make_peer("sender");
  Peer receiver_peer = f.make_peer("receiver");
  for (int i = 0; i < 260; ++i) sender_peer.receive_encoded(f.origin.next());
  for (int i = 0; i < 100; ++i) receiver_peer.receive_encoded(f.origin.next());

  wire::ChannelConfig link_config;
  link_config.loss_rate = 0.5;
  link_config.mtu = 1024;
  link_config.seed = 21;
  wire::ChannelLink link(link_config);

  SessionOptions options;
  options.strategy = overlay::Strategy::kRecodeBloom;
  options.requested_symbols = 250;
  options.handshake_retry_ticks = 3;
  SenderEndpoint sender(sender_peer, options, link.a());
  ReceiverEndpoint receiver(receiver_peer, options, link.b());

  receiver.start();
  std::size_t rounds = 0;
  while (!receiver.transfer_started() && rounds < 2000) {
    sender.tick();
    receiver.tick();
    ++rounds;
  }
  ASSERT_TRUE(receiver.transfer_started());
  // At 50% frame loss the 5-frame bundle essentially never lands whole on
  // the first try; the retry path must have fired.
  EXPECT_GT(receiver.handshake_retries(), 0u);
}

// --- Exact byte accounting -------------------------------------------------

TEST(Endpoint, ControlBytesEqualSumOfTransmittedControlFrames) {
  Fixture f;
  Peer sender_peer = f.make_peer("sender");
  Peer receiver_peer = f.make_peer("receiver");
  for (int i = 0; i < 220; ++i) sender_peer.receive_encoded(f.origin.next());
  for (int i = 0; i < 150; ++i) receiver_peer.receive_encoded(f.origin.next());

  SessionOptions options;
  options.strategy = overlay::Strategy::kRecodeBloom;
  options.requested_symbols = 200;
  InformedSession session(sender_peer, receiver_peer, options);

  // Independently audit every frame the transports emit.
  std::size_t control_bytes = 0, control_frames = 0, data_bytes = 0;
  const auto observe = [&](const std::vector<std::uint8_t>& frame,
                           bool is_control) {
    if (is_control) {
      control_bytes += frame.size();
      ++control_frames;
    } else {
      data_bytes += frame.size();
    }
  };
  session.sender_transport().set_frame_observer(observe);
  session.receiver_transport().set_frame_observer(observe);

  session.handshake();
  session.run(/*target_symbols=*/500, /*max_transmissions=*/4000);
  ASSERT_TRUE(receiver_peer.has_content());

  const auto& stats = session.stats();
  EXPECT_EQ(stats.control_bytes, control_bytes);
  EXPECT_EQ(stats.control_packets, control_frames);
  EXPECT_GT(data_bytes, 0u);
  const auto& tx = session.sender_transport().stats();
  const auto& rx = session.receiver_transport().stats();
  EXPECT_EQ(data_bytes, tx.data_bytes_sent + rx.data_bytes_sent);
}

TEST(Endpoint, ArtSummaryPacketizesOverTheSessionPipe) {
  Fixture f;
  Peer sender_peer = f.make_peer("sender");
  Peer receiver_peer = f.make_peer("receiver");
  for (int i = 0; i < 220; ++i) sender_peer.receive_encoded(f.origin.next());
  for (int i = 0; i < 150; ++i) receiver_peer.receive_encoded(f.origin.next());

  SessionOptions options;
  options.strategy = overlay::Strategy::kRecodeBloom;
  options.summary = SummaryKind::kArt;
  options.requested_symbols = 200;
  InformedSession session(sender_peer, receiver_peer, options);

  std::size_t max_frame = 0;
  session.receiver_transport().set_frame_observer(
      [&](const std::vector<std::uint8_t>& frame, bool) {
        max_frame = std::max(max_frame, frame.size());
      });
  session.handshake();
  // Every frame — including the multi-KB ART summary — fit the 1 KB MTU.
  EXPECT_GT(max_frame, 0u);
  EXPECT_LE(max_frame, kSessionPipeMtu);
  session.run(500, 4000);
  EXPECT_TRUE(receiver_peer.has_content());
  EXPECT_EQ(receiver_peer.content(f.content.size()), f.content);
}

TEST(Endpoint, LossyLinkAccountingMatchesChannelCounters) {
  Fixture f;
  Peer sender_peer = f.make_peer("sender");
  Peer receiver_peer = f.make_peer("receiver");
  for (int i = 0; i < 280; ++i) sender_peer.receive_encoded(f.origin.next());
  for (int i = 0; i < 150; ++i) receiver_peer.receive_encoded(f.origin.next());

  wire::ChannelConfig link_config;
  link_config.loss_rate = 0.1;
  link_config.mtu = 1024;
  link_config.seed = 5;
  wire::ChannelLink link(link_config);

  SessionOptions options;
  options.strategy = overlay::Strategy::kRandomBloom;
  options.requested_symbols = 260;
  SenderEndpoint sender(sender_peer, options, link.a());
  ReceiverEndpoint receiver(receiver_peer, options, link.b());
  drive(sender, receiver, 8000);
  ASSERT_TRUE(receiver.complete());

  // Transport accounting matches the channels byte-for-byte: everything
  // the transports handed down crossed (or was eaten by) the wire.
  const auto& tx = link.a().stats();
  const auto& rx = link.b().stats();
  EXPECT_EQ(tx.bytes_sent + rx.bytes_sent,
            link.a_to_b().sent_bytes() + link.b_to_a().sent_bytes());
  EXPECT_EQ(tx.control_bytes_sent + tx.data_bytes_sent, tx.bytes_sent);
  EXPECT_EQ(tx.control_frames_sent + tx.data_frames_sent, tx.frames_sent);
}

}  // namespace
}  // namespace icd::core

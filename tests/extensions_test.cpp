// Tests for the library's extensions beyond the paper's minimum:
// inactivation decoding, bottom-k sketches, and the adaptive overlay
// simulator.
#include <gtest/gtest.h>

#include <vector>

#include "codec/inactivation.hpp"
#include "overlay/simulator.hpp"
#include "sketch/bottomk.hpp"
#include "sketch/minwise.hpp"
#include "util/random.hpp"

namespace icd {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

// --- Inactivation decoding -------------------------------------------------

TEST(InactivationDecoder, DecodesWithExactlyNSymbolsUsually) {
  // Peeling alone needs (1 + eps) l symbols; with Gaussian elimination the
  // residual solves as soon as the equations have full rank, which for
  // robust-soliton equations happens within a handful of symbols of l.
  const std::uint32_t blocks = 300;
  const auto content = random_content(blocks * 8, 1);
  const codec::BlockSource source(content, 8);
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  codec::Encoder encoder(source, dist, 555);
  codec::InactivationDecoder decoder(encoder.parameters(), dist);
  while (!decoder.complete()) {
    decoder.add_symbol(encoder.next());
    if (decoder.received_count() >= blocks) decoder.try_solve();
    ASSERT_LT(decoder.received_count(), 2 * blocks);
  }
  EXPECT_EQ(codec::BlockSource::restore(decoder.blocks(), content.size()),
            content);
  // Full-rank typically within ~2% of l.
  EXPECT_LE(decoder.received_count(), blocks + blocks / 10);
}

TEST(InactivationDecoder, OverheadBeatsPurePeeling) {
  const std::uint32_t blocks = 500;
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  double peeling = 0, inactivation = 0;
  for (int t = 0; t < 3; ++t) {
    peeling += codec::measure_decode_overhead(blocks, 8, dist, 100 + t);
    inactivation +=
        codec::measure_inactivation_overhead(blocks, 8, dist, 100 + t);
  }
  EXPECT_LT(inactivation, peeling);
  EXPECT_LT(inactivation / 3, 1.05);  // within ~5% of optimal
}

TEST(InactivationDecoder, TrySolveBeforeEnoughSymbolsIsFalse) {
  const std::uint32_t blocks = 100;
  const auto content = random_content(blocks * 8, 2);
  const codec::BlockSource source(content, 8);
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  codec::Encoder encoder(source, dist, 7);
  codec::InactivationDecoder decoder(encoder.parameters(), dist);
  for (std::uint32_t i = 0; i < blocks / 2; ++i) {
    decoder.add_symbol(encoder.next());
  }
  EXPECT_FALSE(decoder.try_solve());
  EXPECT_FALSE(decoder.complete());
  EXPECT_THROW(decoder.blocks(), std::logic_error);
}

TEST(InactivationDecoder, SolvesDegenerateDistributionPeelingCannot) {
  // All-degree-3 equations never peel from scratch (no degree-1 symbols),
  // but a random 3-uniform system reaches full rank quickly; GE finishes
  // where the substitution rule starves. (Degree 2 would NOT work: all
  // even-weight rows span a subspace of rank at most l - 1.)
  const std::uint32_t blocks = 24;
  const auto content = random_content(blocks * 4, 3);
  const codec::BlockSource source(content, 4);
  const auto dist = codec::DegreeDistribution::constant(3);
  codec::Encoder encoder(source, dist, 99);
  codec::InactivationDecoder decoder(encoder.parameters(), dist);
  for (int i = 0; i < 400 && !decoder.try_solve(); ++i) {
    decoder.add_symbol(encoder.next());
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(codec::BlockSource::restore(decoder.blocks(), content.size()),
            content);
}

// --- Bottom-k sketches -------------------------------------------------------

TEST(BottomK, IdenticalSetsResembleCompletely) {
  sketch::BottomKSketch a(1 << 20), b(1 << 20);
  for (std::uint64_t i = 0; i < 500; ++i) {
    a.update(i * 31);
    b.update(i * 31);
  }
  EXPECT_DOUBLE_EQ(sketch::BottomKSketch::resemblance(a, b), 1.0);
}

TEST(BottomK, DisjointSetsResembleRarely) {
  sketch::BottomKSketch a(1 << 20), b(1 << 20);
  for (std::uint64_t i = 0; i < 500; ++i) {
    a.update(i);
    b.update(100000 + i);
  }
  EXPECT_LT(sketch::BottomKSketch::resemblance(a, b), 0.05);
}

TEST(BottomK, TracksTrueResemblance) {
  util::Xoshiro256 rng(4);
  const auto ids = util::sample_without_replacement(1 << 20, 1500, rng);
  // |A| = |B| = 1000, shared 500 -> r = 500 / 1500 = 1/3.
  sketch::BottomKSketch a(1 << 20), b(1 << 20);
  for (int i = 0; i < 1000; ++i) a.update(ids[static_cast<std::size_t>(i)]);
  for (int i = 500; i < 1500; ++i) b.update(ids[static_cast<std::size_t>(i)]);
  EXPECT_NEAR(sketch::BottomKSketch::resemblance(a, b), 1.0 / 3.0, 0.12);
}

TEST(BottomK, LowerVarianceThanMinwiseAtEqualBudget) {
  // The headline property: at the same wire budget (128 values), bottom-k
  // estimates have visibly lower error than 128 independent minima.
  util::Xoshiro256 rng(5);
  double minwise_sq_err = 0, bottomk_sq_err = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    const auto ids = util::sample_without_replacement(1 << 22, 3000, rng);
    const double truth = 1000.0 / 3000.0;
    sketch::MinwiseSketch ma(1 << 22, 128), mb(1 << 22, 128);
    sketch::BottomKSketch ba(1 << 22, 128), bb(1 << 22, 128);
    for (int i = 0; i < 2000; ++i) {
      ma.update(ids[static_cast<std::size_t>(i)]);
      ba.update(ids[static_cast<std::size_t>(i)]);
    }
    for (int i = 1000; i < 3000; ++i) {
      mb.update(ids[static_cast<std::size_t>(i)]);
      bb.update(ids[static_cast<std::size_t>(i)]);
    }
    const double em = sketch::MinwiseSketch::resemblance(ma, mb) - truth;
    const double eb = sketch::BottomKSketch::resemblance(ba, bb) - truth;
    minwise_sq_err += em * em;
    bottomk_sq_err += eb * eb;
  }
  EXPECT_LT(bottomk_sq_err, minwise_sq_err);
}

TEST(BottomK, UnionCombinationMatchesDirectSketch) {
  sketch::BottomKSketch a(1 << 20), b(1 << 20), direct(1 << 20);
  util::Xoshiro256 rng(6);
  for (int i = 0; i < 400; ++i) {
    const auto key = rng.next_below(1 << 20);
    if (i % 2 == 0) a.update(key);
    else b.update(key);
    direct.update(key);
  }
  const auto combined = sketch::BottomKSketch::combine_union(a, b);
  EXPECT_EQ(combined.values(), direct.values());
}

TEST(BottomK, SerializationRoundTrip) {
  sketch::BottomKSketch sketch(1 << 20, 64);
  for (std::uint64_t i = 0; i < 200; ++i) sketch.update(i * 17);
  const auto restored =
      sketch::BottomKSketch::deserialize(sketch.serialize());
  EXPECT_EQ(restored.values(), sketch.values());
  EXPECT_EQ(restored.k(), sketch.k());
}

TEST(BottomK, IncompatibleSketchesThrow) {
  sketch::BottomKSketch a(1 << 20, 64), b(1 << 20, 128);
  EXPECT_THROW(sketch::BottomKSketch::resemblance(a, b),
               std::invalid_argument);
  EXPECT_THROW(sketch::BottomKSketch(1 << 20, 0), std::invalid_argument);
}

// --- Adaptive overlay simulator ---------------------------------------------

overlay::AdaptiveOverlayConfig small_overlay() {
  overlay::AdaptiveOverlayConfig config;
  config.base.n = 200;
  config.base.seed = 424242;
  config.peer_count = 8;
  config.origin_fanout = 2;
  config.connections_per_peer = 2;
  config.reconfigure_interval = 20;
  config.max_rounds = 30000;
  return config;
}

TEST(AdaptiveOverlay, AllPeersCompleteEventually) {
  const auto result = overlay::run_adaptive_overlay(small_overlay());
  EXPECT_EQ(result.completed_peers, 8u);
  EXPECT_GT(result.last_completion, 0u);
  EXPECT_GT(result.control_packets, 0u);
}

TEST(AdaptiveOverlay, ToleratesLoss) {
  // Loss slows delivery but must not break it. A single seed's completion
  // rounds are noisy at this scale, so average over a few.
  double clean_total = 0, lossy_total = 0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    auto config = small_overlay();
    config.base.seed = 424242 + s;
    const auto clean = overlay::run_adaptive_overlay(config);
    EXPECT_EQ(clean.completed_peers, 8u);
    clean_total += clean.mean_completion;
    config.loss_rate = 0.3;
    const auto lossy = overlay::run_adaptive_overlay(config);
    EXPECT_EQ(lossy.completed_peers, 8u);
    lossy_total += lossy.mean_completion;
  }
  EXPECT_GT(lossy_total, clean_total);
}

TEST(AdaptiveOverlay, SurvivesChurn) {
  auto config = small_overlay();
  config.churn_rate = 0.01;
  config.max_rounds = 60000;
  const auto result = overlay::run_adaptive_overlay(config);
  // Someone crashed and the system still finished.
  EXPECT_EQ(result.completed_peers, 8u);
}

TEST(AdaptiveOverlay, StaggeredJoinsComplete) {
  auto config = small_overlay();
  config.join_stagger = 30;
  const auto result = overlay::run_adaptive_overlay(config);
  EXPECT_EQ(result.completed_peers, 8u);
  // Later joiners complete later.
  EXPECT_LE(result.completion_round[0], result.completion_round[7]);
}

TEST(AdaptiveOverlay, SketchAdmissionBeatsRandomSelection) {
  auto informed = small_overlay();
  informed.sketch_admission = true;
  auto random = small_overlay();
  random.sketch_admission = false;
  double informed_total = 0, random_total = 0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    informed.base.seed = 1000 + s;
    random.base.seed = 1000 + s;
    informed_total += static_cast<double>(
        overlay::run_adaptive_overlay(informed).mean_completion);
    random_total += static_cast<double>(
        overlay::run_adaptive_overlay(random).mean_completion);
  }
  EXPECT_LT(informed_total, random_total * 1.05);  // at least comparable
}

TEST(AdaptiveOverlay, DeterministicForSeed) {
  const auto a = overlay::run_adaptive_overlay(small_overlay());
  const auto b = overlay::run_adaptive_overlay(small_overlay());
  EXPECT_EQ(a.completion_round, b.completion_round);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

TEST(AdaptiveOverlay, HeavyReorderingStillCompletes) {
  auto config = small_overlay();
  config.link.reorder_rate = 1.0;
  const auto result = overlay::run_adaptive_overlay(config);
  EXPECT_EQ(result.completed_peers, 8u);
}

TEST(AdaptiveOverlay, TinyMtuRejectionsAreAccounted) {
  auto config = small_overlay();
  config.link.mtu = 4;  // below even an empty-payload symbol frame
  config.max_rounds = 50;
  const auto result = overlay::run_adaptive_overlay(config);
  // Nothing fits the wire: rejected frames must be visible, not counted
  // as traffic.
  EXPECT_EQ(result.completed_peers, 0u);
  EXPECT_EQ(result.transmissions, 0u);
  EXPECT_EQ(result.data_bytes, 0u);
  EXPECT_GT(result.oversized_frames, 0u);
}

TEST(AdaptiveOverlay, RejectsZeroPeers) {
  auto config = small_overlay();
  config.peer_count = 0;
  EXPECT_THROW(overlay::run_adaptive_overlay(config), std::invalid_argument);
}

}  // namespace
}  // namespace icd

// Tests for icd::sketch: min-wise sketches and the sampling estimators of
// Section 4.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "sketch/minwise.hpp"
#include "sketch/sampling.hpp"
#include "util/packet.hpp"
#include "util/random.hpp"

namespace icd::sketch {
namespace {

constexpr std::uint64_t kUniverse = 1 << 20;

/// Two sets with |A| = |B| = size and |A ∩ B| = shared.
struct SetPair {
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  double true_resemblance;
  double true_containment_b;  // |A ∩ B| / |B|
};

SetPair make_set_pair(std::size_t size, std::size_t shared,
                      std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto ids =
      util::sample_without_replacement(kUniverse, 2 * size - shared, rng);
  SetPair pair;
  // A = ids[0, size); B = ids[size - shared, 2 size - shared).
  pair.a.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(size));
  pair.b.assign(ids.begin() + static_cast<std::ptrdiff_t>(size - shared),
                ids.end());
  pair.true_resemblance = static_cast<double>(shared) /
                          static_cast<double>(2 * size - shared);
  pair.true_containment_b =
      static_cast<double>(shared) / static_cast<double>(size);
  return pair;
}

TEST(MinwiseSketch, IdenticalSetsResembleCompletely) {
  const auto pair = make_set_pair(500, 0, 1);
  MinwiseSketch a(kUniverse), b(kUniverse);
  a.update_all(pair.a);
  b.update_all(pair.a);
  EXPECT_DOUBLE_EQ(MinwiseSketch::resemblance(a, b), 1.0);
}

TEST(MinwiseSketch, DisjointSetsResembleRarely) {
  const auto pair = make_set_pair(500, 0, 2);
  MinwiseSketch a(kUniverse), b(kUniverse);
  a.update_all(pair.a);
  b.update_all(pair.b);
  EXPECT_LT(MinwiseSketch::resemblance(a, b), 0.08);
}

TEST(MinwiseSketch, EmptySketchesResembleByConvention) {
  MinwiseSketch a(kUniverse), b(kUniverse);
  EXPECT_DOUBLE_EQ(MinwiseSketch::resemblance(a, b), 1.0);
}

TEST(MinwiseSketch, RequiresAtLeastOnePermutation) {
  EXPECT_THROW(MinwiseSketch(kUniverse, 0), std::invalid_argument);
}

TEST(MinwiseSketch, IncompatibleSketchesThrow) {
  MinwiseSketch a(kUniverse, 128), b(kUniverse, 64);
  EXPECT_THROW(MinwiseSketch::resemblance(a, b), std::invalid_argument);
  MinwiseSketch c(kUniverse, 128, /*seed=*/7);
  EXPECT_THROW(MinwiseSketch::resemblance(a, c), std::invalid_argument);
}

TEST(MinwiseSketch, OrderOfUpdatesIrrelevant) {
  auto keys = make_set_pair(300, 0, 3).a;
  MinwiseSketch forward(kUniverse), backward(kUniverse);
  forward.update_all(keys);
  std::reverse(keys.begin(), keys.end());
  backward.update_all(keys);
  EXPECT_EQ(forward.minima(), backward.minima());
}

/// Property sweep: the estimator should track the true resemblance within
/// the binomial standard error of 128/256 positions.
struct ResemblancePoint {
  std::size_t shared;
  std::size_t permutations;
};

class MinwiseAccuracy : public ::testing::TestWithParam<ResemblancePoint> {};

TEST_P(MinwiseAccuracy, EstimatesResemblance) {
  const auto [shared, permutations] = GetParam();
  constexpr std::size_t kSize = 1000;
  const auto pair = make_set_pair(kSize, shared, 4 + shared);
  MinwiseSketch a(kUniverse, permutations), b(kUniverse, permutations);
  a.update_all(pair.a);
  b.update_all(pair.b);
  const double estimate = MinwiseSketch::resemblance(a, b);
  const double r = pair.true_resemblance;
  const double sigma =
      std::sqrt(r * (1 - r) / static_cast<double>(permutations));
  EXPECT_NEAR(estimate, r, 4 * sigma + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    SharedFractionSweep, MinwiseAccuracy,
    ::testing::Values(ResemblancePoint{0, 128}, ResemblancePoint{100, 128},
                      ResemblancePoint{250, 128}, ResemblancePoint{500, 128},
                      ResemblancePoint{750, 128}, ResemblancePoint{900, 128},
                      ResemblancePoint{1000, 128}, ResemblancePoint{500, 256},
                      ResemblancePoint{250, 64}));

TEST(MinwiseSketch, UnionCombinationMatchesDirectSketch) {
  // "The sketch for the union of A_F and B_F is easily found by taking the
  // coordinate-wise minimum of v(A) and v(B)."
  const auto pair = make_set_pair(400, 100, 5);
  MinwiseSketch a(kUniverse), b(kUniverse), direct(kUniverse);
  a.update_all(pair.a);
  b.update_all(pair.b);
  direct.update_all(pair.a);
  direct.update_all(pair.b);
  const auto combined = MinwiseSketch::combine_union(a, b);
  EXPECT_EQ(combined.minima(), direct.minima());
}

TEST(MinwiseSketch, ThirdPeerOverlapViaUnion) {
  // Estimate overlap of C with A ∪ B using only the three sketches.
  util::Xoshiro256 rng(6);
  const auto ids = util::sample_without_replacement(kUniverse, 3000, rng);
  const std::vector<std::uint64_t> a(ids.begin(), ids.begin() + 1000);
  const std::vector<std::uint64_t> b(ids.begin() + 500, ids.begin() + 1500);
  // C straddles A ∪ B and fresh ids: |C ∩ (A∪B)| = 750 of 1500.
  const std::vector<std::uint64_t> c(ids.begin() + 750, ids.begin() + 2250);
  MinwiseSketch sa(kUniverse, 512), sb(kUniverse, 512), sc(kUniverse, 512);
  sa.update_all(a);
  sb.update_all(b);
  sc.update_all(c);
  const auto sab = MinwiseSketch::combine_union(sa, sb);
  // |C ∩ (A∪B)| = 750, |C ∪ (A∪B)| = 1500 + 1500 - 750.
  const double truth = 750.0 / 2250.0;
  EXPECT_NEAR(MinwiseSketch::resemblance(sab, sc), truth, 0.08);
}

TEST(MinwiseSketch, SerializationRoundTrip) {
  const auto pair = make_set_pair(200, 0, 7);
  MinwiseSketch sketch(kUniverse);
  sketch.update_all(pair.a);
  const auto bytes = sketch.serialize();
  const auto restored = MinwiseSketch::deserialize(bytes);
  EXPECT_EQ(restored.minima(), sketch.minima());
  EXPECT_EQ(restored.universe_size(), sketch.universe_size());
}

TEST(MinwiseSketch, DefaultSketchFitsOnePacket) {
  // The paper's calling-card constraint: the sketch travels in one 1 KB
  // packet.
  MinwiseSketch sketch(kUniverse);
  sketch.update(1);
  EXPECT_LE(sketch.serialize().size(),
            util::kPacketPayloadBytes + 24 /* header */);
  EXPECT_EQ(sketch.permutation_count() * 8, 1024u);
}

TEST(ContainmentConversion, RoundTripsThroughResemblance) {
  // Equal sizes: any containment in [0, 1] is feasible.
  for (const double c : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double r = resemblance_from_containment(c, 1000, 1000);
    EXPECT_NEAR(containment_from_resemblance(r, 1000, 1000), c, 1e-9);
  }
  // Unequal sizes: containment is capped at |A| / |B| (the intersection
  // cannot exceed the smaller set).
  for (const double c : {0.0, 0.1, 0.25, 0.5, 0.66}) {
    const std::size_t size_a = 800, size_b = 1200;
    const double r = resemblance_from_containment(c, size_a, size_b);
    EXPECT_NEAR(containment_from_resemblance(r, size_a, size_b), c, 1e-9);
  }
}

TEST(ContainmentConversion, KnownValues) {
  // |A| = |B| = n, half shared: r = (n/2) / (3n/2) = 1/3, c = 1/2.
  EXPECT_NEAR(containment_from_resemblance(1.0 / 3.0, 1000, 1000), 0.5, 1e-9);
  // Identical sets.
  EXPECT_NEAR(containment_from_resemblance(1.0, 1000, 1000), 1.0, 1e-9);
  // Disjoint sets.
  EXPECT_NEAR(containment_from_resemblance(0.0, 1000, 1000), 0.0, 1e-9);
}

TEST(RandomSample, EstimatesContainment) {
  const auto pair = make_set_pair(2000, 1000, 8);
  util::Xoshiro256 rng(9);
  const RandomSample sample(pair.b, 128, rng);
  const std::unordered_set<std::uint64_t> a_set(pair.a.begin(), pair.a.end());
  // Fraction of B's samples found in A estimates |A ∩ B| / |B| = 0.5.
  EXPECT_NEAR(sample.estimate_containment(a_set), 0.5, 0.15);
}

TEST(RandomSample, SampleSizeAndWireBudget) {
  const auto pair = make_set_pair(500, 0, 10);
  util::Xoshiro256 rng(11);
  const RandomSample sample(pair.a, 128, rng);
  EXPECT_EQ(sample.samples().size(), 128u);
  EXPECT_EQ(sample.source_size(), 500u);
  // 128 64-bit keys ~ 1 KB: the paper's "a 1KB packet can hold roughly 128
  // keys".
  EXPECT_LE(sample.wire_bytes(), 1040u);
}

TEST(RandomSample, EmptySourceThrows) {
  util::Xoshiro256 rng(12);
  EXPECT_THROW(RandomSample({}, 10, rng), std::invalid_argument);
}

TEST(ModKSample, SampleSizeScalesWithK) {
  const auto pair = make_set_pair(4000, 0, 13);
  const ModKSample s8(pair.a, 8);
  const ModKSample s32(pair.a, 32);
  EXPECT_NEAR(static_cast<double>(s8.samples().size()), 4000.0 / 8, 150.0);
  EXPECT_NEAR(static_cast<double>(s32.samples().size()), 4000.0 / 32, 60.0);
}

TEST(ModKSample, EstimatesContainmentFromSamplesAlone) {
  const auto pair = make_set_pair(4000, 2000, 14);
  const ModKSample a(pair.a, 16);
  const ModKSample b(pair.b, 16);
  // |A ∩ B| / |B| = 0.5, estimated purely from the two small samples.
  EXPECT_NEAR(ModKSample::estimate_containment(a, b), 0.5, 0.15);
}

TEST(ModKSample, MismatchedModuliThrow) {
  const auto pair = make_set_pair(100, 0, 15);
  const ModKSample a(pair.a, 8);
  const ModKSample b(pair.b, 16);
  EXPECT_THROW(ModKSample::estimate_containment(a, b), std::invalid_argument);
}

TEST(ModKSample, ZeroModulusThrows) {
  EXPECT_THROW(ModKSample({1, 2, 3}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace icd::sketch

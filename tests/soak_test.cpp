// Soak armor (ctest -L soak; excluded from the tier-1 lane): a 10k-peer
// swarm under Gilbert-Elliott burst loss and membership churn runs to
// completion inside a wall-clock watchdog with zero failed sessions and a
// bounded per-peer memory footprint. This is the scale tentpole's
// endurance gate — sampled admission keeps refreshes O(n * sample), the
// incremental planner keeps empty spans cheap, and the completion-time
// scratch releases keep 10k finished peers from pinning solver state.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "core/delivery.hpp"
#include "core/sharded_delivery.hpp"
#include "util/random.hpp"

namespace icd {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

TEST(Soak, TenThousandPeersChurnAndBurstLossRunToCompletion) {
  const auto start = std::chrono::steady_clock::now();
  const auto content = random_content(2 * 1024, 20260808);
  constexpr std::size_t kPeers = 10'000;
  constexpr std::size_t kMaxTicks = 60'000;

  core::DeliveryOptions options;
  options.block_size = 256;
  options.session_seed = 404;
  options.refresh_interval = 40;
  options.admission_sample = 4;
  options.liveness_timeout_ticks = 80;
  options.suspect_ttl_ticks = 60;
  // Bursty loss: mostly-clean good state, heavy loss in bad bursts.
  options.link.loss_rate = 0.01;
  options.link.ge_loss_good = 0.01;
  options.link.ge_loss_bad = 0.4;
  options.link.ge_p_good_bad = 0.02;
  options.link.ge_p_bad_good = 0.25;
  options.link.delay_ticks = 1;
  // Churn: a handful of crashes with staggered restarts, plus two
  // mid-run join waves the origin does not feed (they must pull
  // everything from the swarm).
  auto faults = std::make_shared<core::FaultPlan>();
  for (std::size_t i = 0; i < 8; ++i) {
    faults->crashes.push_back({100 + 50 * i, 11 + 997 * i});
    faults->restarts.push_back({400 + 50 * i, 11 + 997 * i});
  }
  faults->joins.push_back({250, 50, false});
  faults->joins.push_back({500, 50, false});
  options.faults = faults;

  core::ShardedDelivery service(content, options, {.shards = 4});
  for (std::size_t p = 0; p < kPeers; ++p) {
    service.add_peer("p" + std::to_string(p), p % 16 == 0);
  }
  const bool done = service.run(kMaxTicks);

  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto minutes =
      std::chrono::duration_cast<std::chrono::minutes>(elapsed).count();
  ASSERT_LT(minutes, 20) << "soak run blew the wall-clock watchdog";
  ASSERT_TRUE(done) << "swarm incomplete after " << kMaxTicks << " ticks";

  // Zero failed sessions: liveness timeouts fire during crashes and
  // bursts, but every peer must recover and finish — no session may die
  // unrecovered (an incomplete peer is the failure mode this gate pins).
  std::size_t incomplete = 0;
  for (std::size_t p = 0; p < service.peer_count(); ++p) {
    if (!service.peer_complete(p)) ++incomplete;
  }
  EXPECT_EQ(incomplete, 0u);

  // Tick past the next refresh boundary so the teardown path retires the
  // final wave of sessions (run() short-circuits once complete; tick()
  // still executes refresh boundaries).
  for (std::size_t t = 0; t <= options.refresh_interval; ++t) service.tick();

  // Bounded memory: with every session retired and solver state
  // compacted, the steady-state footprint is decoded content plus small
  // bookkeeping — far below the in-flight working set.
  const auto audit = service.memory_audit();
  EXPECT_EQ(audit.endpoint_bytes, 0u);
  EXPECT_EQ(audit.link_bytes, 0u);
  EXPECT_LT(audit.bytes_per_peer(), 32 * 1024.0);
  // Spot-check content integrity across the swarm, including a late joiner.
  EXPECT_EQ(service.peer_content(0), content);
  EXPECT_EQ(service.peer_content(kPeers / 2), content);
  EXPECT_EQ(service.peer_content(service.peer_count() - 1), content);
}

}  // namespace
}  // namespace icd

// Equivalence pin for the flat-arena solver rewrite: the production
// PeelingDecoder (CSR key arena, degree-counter + XOR-accumulator
// substitution, dense/hash known stores) must match the retained
// list-based ReferencePeelingDecoder bit-for-bit on every observable —
// return values, recovery-log order, recovered values, buffered and
// redundant counters — across randomized scripted op sequences, and the
// incremental-elimination InactivationDecoder must match the
// scratch-elimination reference step for step.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/inactivation.hpp"
#include "codec/peeling.hpp"
#include "codec/solver_reference.hpp"
#include "util/random.hpp"

namespace icd {
namespace {

template <typename Key>
void expect_same_state(const codec::PeelingDecoder<Key>& solver,
                       const codec::ReferencePeelingDecoder<Key>& reference,
                       const std::vector<Key>& universe, int trial,
                       std::size_t op) {
  ASSERT_EQ(solver.known_count(), reference.known_count())
      << "trial " << trial << " op " << op;
  ASSERT_EQ(solver.buffered_count(), reference.buffered_count())
      << "trial " << trial << " op " << op;
  ASSERT_EQ(solver.redundant_count(), reference.redundant_count())
      << "trial " << trial << " op " << op;
  ASSERT_EQ(solver.recovery_log(), reference.recovery_log())
      << "trial " << trial << " op " << op;
  for (const Key& key : universe) {
    ASSERT_EQ(solver.is_known(key), reference.is_known(key))
        << "trial " << trial << " op " << op << " key " << key;
    if (solver.is_known(key)) {
      ASSERT_EQ(solver.value(key), reference.value(key))
          << "trial " << trial << " op " << op << " key " << key;
    }
  }
}

/// Random add/mark_known/release scripts over a small key universe, with
/// duplicate keys inside equations and payloads derived from per-key truth
/// values so recovered bytes are checkable.
template <typename Key>
void run_scripted_trials(const std::vector<Key>& universe,
                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const std::size_t payload_size = 6;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::vector<std::uint8_t>> truth(universe.size());
    for (auto& value : truth) {
      value.resize(payload_size);
      for (auto& byte : value) byte = static_cast<std::uint8_t>(rng());
    }

    codec::PeelingDecoder<Key> solver;
    codec::ReferencePeelingDecoder<Key> reference;
    const std::size_t ops = 30 + rng.next_below(60);
    for (std::size_t op = 0; op < ops; ++op) {
      const std::uint64_t kind = rng.next_below(100);
      if (kind < 70) {
        // Equation with keys drawn *with replacement*: duplicates cancel.
        const std::size_t degree = 1 + rng.next_below(5);
        std::vector<Key> keys;
        std::vector<std::uint8_t> payload(payload_size, 0);
        for (std::size_t d = 0; d < degree; ++d) {
          const std::size_t pick = rng.next_below(universe.size());
          keys.push_back(universe[pick]);
          for (std::size_t b = 0; b < payload_size; ++b) {
            payload[b] ^= truth[pick][b];
          }
        }
        bool got, want;
        if (rng.next_below(2) == 0) {
          got = solver.add_equation(keys, payload);
          want = reference.add_equation(keys, payload);
        } else {
          got = solver.add_equation(std::span<const Key>(keys),
                                    std::span<const std::uint8_t>(payload));
          want = reference.add_equation(std::span<const Key>(keys),
                                        std::span<const std::uint8_t>(payload));
        }
        ASSERT_EQ(got, want) << "trial " << trial << " op " << op;
      } else if (kind < 90) {
        const std::size_t pick = rng.next_below(universe.size());
        const bool got = solver.mark_known(universe[pick], truth[pick]);
        const bool want = reference.mark_known(universe[pick], truth[pick]);
        ASSERT_EQ(got, want) << "trial " << trial << " op " << op;
      } else {
        solver.release_solver_state();
        reference.release_solver_state();
      }
      expect_same_state(solver, reference, universe, trial, op);
    }
    // Recovered values are the truth (payloads were consistent).
    for (std::size_t k = 0; k < universe.size(); ++k) {
      if (solver.is_known(universe[k])) {
        ASSERT_EQ(solver.value(universe[k]), truth[k]) << "trial " << trial;
      }
    }
    // Stats invariants on the production solver.
    ASSERT_EQ(solver.stats().recovered, solver.known_count());
    ASSERT_EQ(solver.stats().redundant, solver.redundant_count());
  }
}

TEST(SolverProperty, DenseBlockKeysMatchReference) {
  std::vector<std::uint32_t> universe(24);
  for (std::uint32_t i = 0; i < universe.size(); ++i) universe[i] = i;
  run_scripted_trials(universe, 0xD15C0);
}

TEST(SolverProperty, SparseRecodeKeysMatchReference) {
  // Recode-level 64-bit symbol ids: exercises the hash known store and
  // hash incidence index rather than the dense specializations.
  util::Xoshiro256 rng(0xBEEF);
  std::vector<std::uint64_t> universe(24);
  for (auto& id : universe) id = rng();
  run_scripted_trials(universe, 0xF00D);
}

TEST(SolverProperty, SignedTestKeysMatchReference) {
  // codec_test drives PeelingDecoder<int>; keep that path pinned too.
  std::vector<int> universe(16);
  for (int i = 0; i < static_cast<int>(universe.size()); ++i) {
    universe[static_cast<std::size_t>(i)] = i * 3 - 8;
  }
  run_scripted_trials(universe, 0xCAFE);
}

TEST(SolverProperty, EquationPlaneExposesLiveResidualSystem) {
  // White-box: the CSR equation plane the inactivation solver folds from.
  codec::PeelingDecoder<std::uint32_t> solver;
  ASSERT_EQ(solver.equation_count(), 0u);
  solver.add_equation(std::vector<std::uint32_t>{1, 2, 3},
                      std::vector<std::uint8_t>{7});
  solver.add_equation(std::vector<std::uint32_t>{2, 4},
                      std::vector<std::uint8_t>{9});
  ASSERT_EQ(solver.equation_count(), 2u);
  EXPECT_TRUE(solver.equation_live(0));
  EXPECT_EQ(solver.equation_unknown_count(0), 3u);
  const auto keys0 = solver.equation_keys(0);
  EXPECT_EQ(std::vector<std::uint32_t>(keys0.begin(), keys0.end()),
            (std::vector<std::uint32_t>{1, 2, 3}));
  // Recover 2: both equations substitute; eq 1 retires by recovering 4.
  solver.mark_known(2u, std::vector<std::uint8_t>{1});
  EXPECT_TRUE(solver.equation_live(0));
  EXPECT_EQ(solver.equation_unknown_count(0), 2u);
  EXPECT_FALSE(solver.equation_live(1));
  EXPECT_TRUE(solver.is_known(4u));
  EXPECT_EQ(solver.value(4u), (std::vector<std::uint8_t>{8}));
  // The arena row still lists the *initial* unknowns.
  const auto keys0_after = solver.equation_keys(0);
  EXPECT_EQ(std::vector<std::uint32_t>(keys0_after.begin(), keys0_after.end()),
            (std::vector<std::uint32_t>{1, 2, 3}));
}

/// Runs the incremental and scratch inactivation decoders in lockstep:
/// same symbols, try_solve after every arrival past the first, equal
/// returns and recovered counts at every step, equal blocks at the end.
void run_inactivation_lockstep(std::uint32_t blocks,
                               const codec::DegreeDistribution& dist,
                               std::uint64_t seed, std::size_t max_symbols) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(blocks * 4);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  const codec::BlockSource source(content, 4);
  codec::Encoder encoder(source, dist, seed);
  codec::InactivationDecoder solver(encoder.parameters(), dist);
  codec::ReferenceInactivationDecoder reference(encoder.parameters(), dist);
  while (!solver.complete() && solver.received_count() < max_symbols) {
    const auto symbol = encoder.next();
    ASSERT_EQ(solver.add_symbol(symbol), reference.add_symbol(symbol));
    ASSERT_EQ(solver.try_solve(), reference.try_solve())
        << "at symbol " << solver.received_count();
    ASSERT_EQ(solver.recovered_count(), reference.recovered_count())
        << "at symbol " << solver.received_count();
    ASSERT_EQ(solver.complete(), reference.complete());
  }
  ASSERT_TRUE(solver.complete()) << "decode did not converge";
  EXPECT_EQ(solver.blocks(), reference.blocks());
  EXPECT_EQ(codec::BlockSource::restore(solver.blocks(), content.size()),
            content);
}

TEST(SolverProperty, IncrementalInactivationMatchesScratchReference) {
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint32_t blocks = 40 + 17 * static_cast<std::uint32_t>(trial);
    run_inactivation_lockstep(
        blocks, codec::DegreeDistribution::robust_soliton(blocks),
        900 + static_cast<std::uint64_t>(trial), 40ULL * blocks);
  }
}

TEST(SolverProperty, IncrementalInactivationMatchesReferenceWhenPeelingStalls) {
  // Constant degree 3 never peels from cold: every recovery comes out of
  // the elimination state, maximizing residual-row traffic (fold, sweep,
  // re-pivot) against the reference's scratch rebuild.
  for (int trial = 0; trial < 4; ++trial) {
    run_inactivation_lockstep(64, codec::DegreeDistribution::constant(3),
                              700 + static_cast<std::uint64_t>(trial), 4000);
  }
}

}  // namespace
}  // namespace icd

// Property-based and cross-validation suites: randomized inputs checked
// against invariants or against an independent reference implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/inactivation.hpp"
#include "codec/peeling.hpp"
#include "filter/bloom.hpp"
#include "reconcile/cpi.hpp"
#include "reconcile/reconciler.hpp"
#include "sketch/minwise.hpp"
#include "util/random.hpp"
#include "wire/message.hpp"

namespace icd {
namespace {

// --- Peeling decoder vs brute-force GF(2) reference -------------------------

/// Reference solver: full Gauss-Jordan over GF(2) on byte payloads.
/// Returns the set of variables with a uniquely determined value.
std::map<int, std::uint8_t> reference_solve(
    std::vector<std::pair<std::vector<int>, std::uint8_t>> equations,
    const std::vector<int>& variables) {
  std::map<int, std::size_t> column;
  for (std::size_t i = 0; i < variables.size(); ++i) {
    column[variables[i]] = i;
  }
  const std::size_t n = variables.size();
  struct Row {
    std::vector<int> bits;
    std::uint8_t rhs;
  };
  std::vector<Row> rows;
  for (auto& [keys, rhs] : equations) {
    Row row{std::vector<int>(n, 0), rhs};
    for (const int k : keys) row.bits[column.at(k)] ^= 1;
    rows.push_back(std::move(row));
  }
  std::vector<std::ptrdiff_t> pivot_of(n, -1);
  std::size_t next = 0;
  for (std::size_t col = 0; col < n && next < rows.size(); ++col) {
    std::size_t pivot = next;
    while (pivot < rows.size() && !rows[pivot].bits[col]) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[pivot], rows[next]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != next && rows[r].bits[col]) {
        for (std::size_t c = 0; c < n; ++c) rows[r].bits[c] ^= rows[next].bits[c];
        rows[r].rhs ^= rows[next].rhs;
      }
    }
    pivot_of[col] = static_cast<std::ptrdiff_t>(next);
    ++next;
  }
  std::map<int, std::uint8_t> solved;
  for (std::size_t col = 0; col < n; ++col) {
    if (pivot_of[col] < 0) continue;
    const Row& row = rows[static_cast<std::size_t>(pivot_of[col])];
    // Uniquely determined iff the pivot row touches no other free column.
    bool unique = true;
    for (std::size_t c = 0; c < n; ++c) {
      if (c != col && row.bits[c]) {
        unique = false;
        break;
      }
    }
    if (unique) solved[variables[col]] = row.rhs;
  }
  return solved;
}

TEST(PeelingVsReference, PeelingNeverContradictsGaussianElimination) {
  // Fuzz: random sparse equation systems. Everything the peeler recovers
  // must be uniquely determined, with the same value, under full GE.
  util::Xoshiro256 rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const int n_vars = 4 + static_cast<int>(rng.next_below(12));
    const int n_eqs = 2 + static_cast<int>(rng.next_below(24));
    std::vector<int> variables(static_cast<std::size_t>(n_vars));
    for (int v = 0; v < n_vars; ++v) variables[static_cast<std::size_t>(v)] = v;
    std::vector<std::uint8_t> truth(static_cast<std::size_t>(n_vars));
    for (auto& t : truth) t = static_cast<std::uint8_t>(rng());

    codec::PeelingDecoder<int> peeler;
    std::vector<std::pair<std::vector<int>, std::uint8_t>> equations;
    for (int e = 0; e < n_eqs; ++e) {
      const std::size_t degree = 1 + rng.next_below(4);
      std::set<int> keys;
      while (keys.size() < degree) {
        keys.insert(static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(n_vars))));
      }
      std::uint8_t rhs = 0;
      for (const int k : keys) rhs ^= truth[static_cast<std::size_t>(k)];
      const std::vector<int> key_vec(keys.begin(), keys.end());
      equations.emplace_back(key_vec, rhs);
      peeler.add_equation(key_vec, {rhs});
    }

    const auto reference = reference_solve(equations, variables);
    // Peeling finds a subset of the uniquely determined variables, with
    // correct values.
    for (int v = 0; v < n_vars; ++v) {
      if (peeler.is_known(v)) {
        const auto it = reference.find(v);
        ASSERT_NE(it, reference.end())
            << "peeler recovered var " << v << " that GE says is free";
        EXPECT_EQ(peeler.value(v)[0], it->second);
        EXPECT_EQ(peeler.value(v)[0], truth[static_cast<std::size_t>(v)]);
      }
    }
  }
}

TEST(PeelingVsReference, InactivationMatchesReferenceSolvability) {
  // If GE on the received equations uniquely determines every block, the
  // inactivation decoder must also finish — and agree with the truth.
  util::Xoshiro256 rng(202);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t blocks = 16 + static_cast<std::uint32_t>(
        rng.next_below(32));
    std::vector<std::uint8_t> content(blocks * 2);
    for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
    const codec::BlockSource source(content, 2);
    const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
    codec::Encoder encoder(source, dist, 300 + static_cast<std::uint64_t>(trial));
    codec::InactivationDecoder decoder(encoder.parameters(), dist);
    for (std::uint32_t i = 0; i < 2 * blocks; ++i) {
      decoder.add_symbol(encoder.next());
    }
    // 2l robust-soliton symbols are full-rank with overwhelming probability.
    ASSERT_TRUE(decoder.try_solve());
    EXPECT_EQ(codec::BlockSource::restore(decoder.blocks(), content.size()),
              content);
  }
}

// --- Wire protocol fuzz ------------------------------------------------------

TEST(WireFuzz, MutatedFramesNeverCrashOrMisparse) {
  // Random single-byte mutations of valid frames must either decode to
  // SOME message (benign mutation) or throw invalid_argument — never
  // crash, never throw anything else.
  util::Xoshiro256 rng(303);
  wire::EncodedSymbolMessage symbol;
  symbol.symbol.id = 77;
  symbol.symbol.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto frame = wire::encode_frame(symbol);
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = frame;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      (void)wire::decode_frame(mutated);
    } catch (const std::invalid_argument&) {
      // expected for most mutations
    }
  }
}

TEST(WireFuzz, RandomBytesNeverCrash) {
  util::Xoshiro256 rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng());
    try {
      (void)wire::decode_frame(junk);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(WireFuzz, TruncationsAlwaysRejected) {
  wire::RecodedSymbolMessage message;
  message.symbol.constituents = {1, 2, 3};
  message.symbol.payload = {9, 9, 9};
  const auto frame = wire::encode_frame(message);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    std::vector<std::uint8_t> prefix(frame.begin(),
                                     frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)wire::decode_frame(prefix), std::invalid_argument)
        << "prefix length " << len;
  }
}

// --- Bloom filter grid -------------------------------------------------------

struct BloomGridPoint {
  std::size_t bits_per_element;
  std::size_t hashes;
};

class BloomGrid : public ::testing::TestWithParam<BloomGridPoint> {};

TEST_P(BloomGrid, MeasuredFpWithinTheory) {
  const auto [bpe, k] = GetParam();
  constexpr std::size_t n = 4000;
  util::Xoshiro256 rng(505);
  filter::BloomFilter filter(bpe * n, k);
  for (std::size_t i = 0; i < n; ++i) filter.insert(rng());
  std::size_t fp = 0;
  constexpr std::size_t kProbes = 40000;
  for (std::size_t i = 0; i < kProbes; ++i) {
    if (filter.contains(rng())) ++fp;
  }
  const double measured = static_cast<double>(fp) / kProbes;
  const double theory =
      filter::BloomFilter::fp_rate(bpe * n, n, k);
  EXPECT_NEAR(measured, theory, theory * 0.3 + 0.004)
      << "bpe=" << bpe << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BloomGrid,
    ::testing::Values(BloomGridPoint{2, 1}, BloomGridPoint{2, 2},
                      BloomGridPoint{4, 2}, BloomGridPoint{4, 3},
                      BloomGridPoint{6, 4}, BloomGridPoint{8, 5},
                      BloomGridPoint{8, 6}, BloomGridPoint{12, 8},
                      BloomGridPoint{16, 11}));

// --- Decode overhead sweep ---------------------------------------------------

class OverheadSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OverheadSweep, OverheadBoundedAndInactivationDominates) {
  const std::uint32_t blocks = GetParam();
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  const double peel = codec::measure_decode_overhead(blocks, 4, dist, 606);
  const double inact =
      codec::measure_inactivation_overhead(blocks, 4, dist, 606);
  EXPECT_GE(peel, 1.0);
  EXPECT_GE(inact, 1.0);
  EXPECT_LE(inact, peel);       // GE can only help
  // Single-trial peeling overhead has high variance at small l; 1.5 is a
  // loose sanity bound, the tight averaged bounds live in bench_codec.
  EXPECT_LT(peel, 1.5);
  EXPECT_LT(inact, 1.10);
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, OverheadSweep,
                         ::testing::Values(200, 400, 800, 1600));

// --- CPI random property sweep -----------------------------------------------

TEST(CpiProperty, RandomSizesAndDiscrepanciesReconcileExactly) {
  util::Xoshiro256 rng(707);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t shared = 20 + rng.next_below(200);
    const std::size_t a_extra = rng.next_below(12);
    const std::size_t b_extra = rng.next_below(12);
    std::set<std::uint64_t> pool;
    while (pool.size() < shared + a_extra + b_extra) {
      pool.insert(rng.next_below(reconcile::kMaxCpiKey));
    }
    std::vector<std::uint64_t> all(pool.begin(), pool.end());
    util::shuffle(all, rng);
    std::vector<std::uint64_t> a(all.begin(),
                                 all.begin() + static_cast<std::ptrdiff_t>(
                                                   shared + a_extra));
    std::vector<std::uint64_t> b(all.begin(),
                                 all.begin() + static_cast<std::ptrdiff_t>(shared));
    b.insert(b.end(), all.begin() + static_cast<std::ptrdiff_t>(shared + a_extra),
             all.end());

    const auto sketch = reconcile::make_cpi_sketch(a, a_extra + b_extra + 6);
    const auto result =
        reconcile::cpi_reconcile(b, sketch, a_extra + b_extra + 2);
    ASSERT_TRUE(result.verified)
        << "shared=" << shared << " a+=" << a_extra << " b+=" << b_extra;
    EXPECT_EQ(result.remote_only_count, a_extra);
    EXPECT_EQ(result.local_only.size(), b_extra);
    const std::set<std::uint64_t> b_only_truth(
        all.begin() + static_cast<std::ptrdiff_t>(shared + a_extra), all.end());
    for (const auto key : result.local_only) {
      EXPECT_TRUE(b_only_truth.contains(key));
    }
  }
}

// --- Reconciler facade cross-method agreement --------------------------------

TEST(FacadeProperty, ApproximateMethodsAreSubsetsOfExactTruth) {
  util::Xoshiro256 rng(808);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 200 + rng.next_below(1500);
    const std::size_t d = 5 + rng.next_below(60);
    std::set<std::uint64_t> pool;
    while (pool.size() < n + d) {
      pool.insert(rng.next_below(reconcile::kMaxCpiKey));
    }
    std::vector<std::uint64_t> remote(pool.begin(), pool.end());
    std::vector<std::uint64_t> local = remote;
    remote.resize(n);
    // local = remote + last d keys of the pool.

    reconcile::ReconcileOptions options;
    options.method = reconcile::Method::kWholeSet;
    const auto exact = reconcile::reconcile(local, remote, options);
    const std::set<std::uint64_t> truth(exact.local_minus_remote.begin(),
                                        exact.local_minus_remote.end());
    ASSERT_EQ(truth.size(), d);

    for (const auto method :
         {reconcile::Method::kBloomFilter, reconcile::Method::kArt}) {
      options.method = method;
      const auto outcome = reconcile::reconcile(local, remote, options);
      EXPECT_LE(outcome.local_minus_remote.size(), d);
      for (const auto key : outcome.local_minus_remote) {
        EXPECT_TRUE(truth.contains(key))
            << reconcile::method_name(method) << " invented a difference";
      }
    }
  }
}

// --- Min-wise sketch estimator is unbiased across set-size asymmetry ---------

struct AsymmetryPoint {
  std::size_t size_a;
  std::size_t size_b;
  std::size_t shared;
};

class MinwiseAsymmetry : public ::testing::TestWithParam<AsymmetryPoint> {};

TEST_P(MinwiseAsymmetry, ResemblanceTracksTruthForUnequalSets) {
  const auto [size_a, size_b, shared] = GetParam();
  util::Xoshiro256 rng(909);
  const auto ids = util::sample_without_replacement(
      1 << 22, size_a + size_b - shared, rng);
  sketch::MinwiseSketch a(1 << 22, 256), b(1 << 22, 256);
  for (std::size_t i = 0; i < size_a; ++i) a.update(ids[i]);
  for (std::size_t i = size_a - shared; i < ids.size(); ++i) b.update(ids[i]);
  const double truth = static_cast<double>(shared) /
                       static_cast<double>(size_a + size_b - shared);
  EXPECT_NEAR(sketch::MinwiseSketch::resemblance(a, b), truth, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Asymmetries, MinwiseAsymmetry,
    ::testing::Values(AsymmetryPoint{100, 4000, 50},
                      AsymmetryPoint{500, 2000, 400},
                      AsymmetryPoint{2000, 500, 100},
                      AsymmetryPoint{3000, 3000, 1500},
                      AsymmetryPoint{50, 50, 25}));

}  // namespace
}  // namespace icd

// Tests for the icd::util substrate: RNG, primality, hashing, permutations,
// bit vectors, serialization buffers, packetization.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/bitvector.hpp"
#include "util/buffer.hpp"
#include "util/hash.hpp"
#include "util/packet.hpp"
#include "util/permutation.hpp"
#include "util/prime.hpp"
#include "util/random.hpp"

namespace icd::util {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference values for seed 0 from the published splitmix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowZeroThrows) {
  Xoshiro256 rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, NextBelowRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.next_below(kBuckets)]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SampleWithoutReplacement, ProducesDistinctValuesInRange) {
  Xoshiro256 rng(3);
  const auto sample = sample_without_replacement(100, 30, rng);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto v : sample) EXPECT_LT(v, 100u);
}

TEST(SampleWithoutReplacement, FullRangeIsPermutation) {
  Xoshiro256 rng(4);
  const auto sample = sample_without_replacement(50, 50, rng);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(SampleWithoutReplacement, RejectsOversizedRequest) {
  Xoshiro256 rng(5);
  EXPECT_THROW(sample_without_replacement(10, 11, rng), std::invalid_argument);
}

TEST(SampleWithoutReplacement, UniformCoverage) {
  // Every element should be picked with probability k/n.
  Xoshiro256 rng(6);
  constexpr int kTrials = 20000;
  int hits[20] = {};
  for (int t = 0; t < kTrials; ++t) {
    for (const auto v : sample_without_replacement(20, 5, rng)) {
      hits[v]++;
    }
  }
  for (const int h : hits) {
    EXPECT_NEAR(h, kTrials / 4, kTrials / 40);
  }
}

TEST(Shuffle, PreservesElements) {
  Xoshiro256 rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Prime, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(1000));
  EXPECT_TRUE(is_prime(7919));
}

TEST(Prime, LargeKnownPrimes) {
  EXPECT_TRUE(is_prime((std::uint64_t{1} << 61) - 1));  // Mersenne M61
  EXPECT_TRUE(is_prime(0xFFFFFFFFFFFFFFC5ULL));         // largest 64-bit prime
  EXPECT_FALSE(is_prime((std::uint64_t{1} << 61)));
  EXPECT_FALSE(is_prime(0xFFFFFFFFFFFFFFC7ULL));
}

TEST(Prime, CarmichaelNumbersRejected) {
  EXPECT_FALSE(is_prime(561));
  EXPECT_FALSE(is_prime(1105));
  EXPECT_FALSE(is_prime(41041));
  EXPECT_FALSE(is_prime(825265));
}

TEST(Prime, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(7908), 7919u);
}

TEST(Prime, MulModMatchesSmallCases) {
  EXPECT_EQ(mul_mod(7, 8, 5), 1u);
  EXPECT_EQ(mul_mod(0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
                    0xFFFFFFFFFFFFFFC5ULL),
            mul_mod(58, 58, 0xFFFFFFFFFFFFFFC5ULL));
}

TEST(Prime, PowModKnownValues) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(3, 0, 7), 1u);
  EXPECT_EQ(pow_mod(10, 18, 1000000007ULL), 49u);  // 10^18 mod p
}

TEST(Prime, InverseMod) {
  const std::uint64_t p = 1000000007ULL;
  for (std::uint64_t a :
       {std::uint64_t{2}, std::uint64_t{3}, std::uint64_t{123456789}, p - 1}) {
    EXPECT_EQ(mul_mod(a, inverse_mod(a, p), p), 1u);
  }
  EXPECT_THROW(inverse_mod(0, p), std::invalid_argument);
}

TEST(Hash, Mix64IsBijectiveOnSamples) {
  // Injectivity spot check: no collisions across a large sample.
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    seen.insert(mix64(i));
  }
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(Hash, SeedChangesHash64) {
  int equal = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (hash64(i, 1) == hash64(i, 2)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Hash, Fnv1aKnownVector) {
  const std::string s = "hello";
  const auto h = fnv1a(std::as_bytes(std::span(s.data(), s.size())));
  EXPECT_EQ(h, 0xa430d84680aabd0bULL);
}

TEST(DoubleHashFamily, CoversRange) {
  DoubleHashFamily family(100, 1);
  std::set<std::size_t> positions;
  for (std::uint64_t key = 0; key < 500; ++key) {
    for (std::size_t i = 0; i < 3; ++i) {
      const auto p = family.at(key, i);
      EXPECT_LT(p, 100u);
      positions.insert(p);
    }
  }
  EXPECT_EQ(positions.size(), 100u);  // all slots reachable
}

TEST(DoubleHashFamily, FillMatchesAt) {
  DoubleHashFamily family(997, 3);
  std::vector<std::size_t> out;
  family.fill(12345, 5, out);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], family.at(12345, i));
}

TEST(DoubleHashFamily, ZeroRangeThrows) {
  EXPECT_THROW(DoubleHashFamily(0, 1), std::invalid_argument);
}

TEST(TabulationHash, DeterministicAndSeedSensitive) {
  TabulationHash64 h1(1), h1b(1), h2(2);
  EXPECT_EQ(h1(12345), h1b(12345));
  EXPECT_NE(h1(12345), h2(12345));
}

TEST(LinearPermutation, IsBijectionOnFullDomain) {
  const std::uint64_t p = 101;
  LinearPermutation perm(13, 7, p);
  std::set<std::uint64_t> image;
  for (std::uint64_t x = 0; x < p; ++x) {
    const auto y = perm(x);
    EXPECT_LT(y, p);
    image.insert(y);
  }
  EXPECT_EQ(image.size(), p);
}

TEST(LinearPermutation, InverseRoundTrips) {
  Xoshiro256 rng(17);
  const auto perm = LinearPermutation::random(1 << 20, rng);
  for (std::uint64_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(perm.inverse(perm(x)), x % perm.modulus());
  }
}

TEST(LinearPermutation, RejectsBadParameters) {
  EXPECT_THROW(LinearPermutation(1, 0, 100), std::invalid_argument);  // 100 not prime
  EXPECT_THROW(LinearPermutation(0, 0, 101), std::invalid_argument);  // a == 0
  EXPECT_THROW(LinearPermutation(101, 0, 101), std::invalid_argument);
}

TEST(LinearPermutation, FamilyIsDeterministicInSeed) {
  const auto f1 = make_permutation_family(1000, 8, 99);
  const auto f2 = make_permutation_family(1000, 8, 99);
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].a(), f2[i].a());
    EXPECT_EQ(f1[i].b(), f2[i].b());
  }
}

TEST(BitVector, SetGetClear) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_FALSE(bits.get(0));
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.get(0));
  EXPECT_TRUE(bits.get(64));
  EXPECT_TRUE(bits.get(129));
  EXPECT_EQ(bits.popcount(), 3u);
  bits.clear(64);
  EXPECT_FALSE(bits.get(64));
  EXPECT_EQ(bits.popcount(), 2u);
  bits.reset();
  EXPECT_EQ(bits.popcount(), 0u);
}

TEST(BitVector, UnionAndIntersection) {
  BitVector a(64), b(64);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  BitVector u = a;
  u |= b;
  EXPECT_TRUE(u.get(1));
  EXPECT_TRUE(u.get(2));
  EXPECT_TRUE(u.get(3));
  BitVector i = a;
  i &= b;
  EXPECT_FALSE(i.get(1));
  EXPECT_TRUE(i.get(2));
  EXPECT_FALSE(i.get(3));
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(64), b(65);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
}

TEST(BitVector, SerializationRoundTrip) {
  BitVector bits(100);
  bits.set(5);
  bits.set(63);
  bits.set(99);
  const auto bytes = bits.to_bytes();
  const auto restored = BitVector::from_bytes(bytes, 100);
  EXPECT_EQ(bits, restored);
}

TEST(ByteBuffer, RoundTripsAllWidths) {
  ByteWriter writer;
  writer.u8(0xab);
  writer.u16(0x1234);
  writer.u32(0xdeadbeef);
  writer.u64(0x0123456789abcdefULL);
  writer.varint(0);
  writer.varint(127);
  writer.varint(128);
  writer.varint(0xffffffffffffffffULL);

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u16(), 0x1234);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.varint(), 0u);
  EXPECT_EQ(reader.varint(), 127u);
  EXPECT_EQ(reader.varint(), 128u);
  EXPECT_EQ(reader.varint(), 0xffffffffffffffffULL);
  EXPECT_TRUE(reader.done());
}

TEST(ByteBuffer, ReaderThrowsOnUnderrun) {
  ByteWriter writer;
  writer.u16(7);
  ByteReader reader(writer.bytes());
  reader.u8();
  EXPECT_THROW(reader.u16(), std::out_of_range);
}

TEST(ByteBuffer, VarintEncodingIsMinimal) {
  ByteWriter writer;
  writer.varint(127);
  EXPECT_EQ(writer.size(), 1u);
  writer.varint(128);
  EXPECT_EQ(writer.size(), 3u);  // 1 + 2
  writer.varint(1ULL << 21);
  EXPECT_EQ(writer.size(), 7u);  // + 4
}

TEST(Packet, PacketizeSplitsAtMtu) {
  std::vector<std::uint8_t> message(2500, 7);
  const auto packets = packetize(message, 1024);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].size(), 1024u);
  EXPECT_EQ(packets[1].size(), 1024u);
  EXPECT_EQ(packets[2].size(), 452u);
  EXPECT_EQ(reassemble(packets), message);
}

TEST(Packet, PacketsForMatchesFormula) {
  EXPECT_EQ(packets_for(0), 0u);
  EXPECT_EQ(packets_for(1), 1u);
  EXPECT_EQ(packets_for(1024), 1u);
  EXPECT_EQ(packets_for(1025), 2u);
}

TEST(Packet, SketchFitsOnePacket) {
  // The paper's sizing argument: 128 64-bit minima fill exactly one 1 KB
  // packet.
  EXPECT_EQ(packets_for(128 * 8), 1u);
}

}  // namespace
}  // namespace icd::util

// The declarative scenario engine: parser round-trips and its fuzz-style
// rejection corpus (truncated lines, duplicate keys, out-of-range rates,
// unknown profile names — every malformed input throws with the origin and
// line number, never UB), arrival-process generation (seeded Poisson and
// flash ramps compiled into sorted FaultPlan joins), access-link edge
// composition, and a full compile-and-run through all three drivers with
// the determinism contracts and pass gates enforced.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/delivery.hpp"
#include "core/scenario.hpp"
#include "core/sharded_delivery.hpp"
#include "wire/channel.hpp"

namespace icd {
namespace {

using core::ArrivalProcess;
using core::LinkProfile;
using core::Scenario;

/// EXPECT that parsing `text` throws and the message contains every needle
/// (origin tag, line number, and the actionable phrase).
void expect_rejected(const std::string& text,
                     const std::vector<std::string>& needles) {
  try {
    Scenario::parse_text(text, "corpus.scn");
    FAIL() << "parser accepted malformed scenario:\n" << text;
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    for (const auto& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "error message '" << what << "' missing '" << needle << "'";
    }
  }
}

// --- Parsing ----------------------------------------------------------------

TEST(ScenarioParse, FullFileRoundTrip) {
  const auto scenario = Scenario::parse_text(R"(# a comment line
name kitchen-sink
peers 6
fed 2
content_bytes 1536
block_size 64
seed 99
strategy random
mtu 900
refresh_interval 40
max_peer_sessions 3
flow_control 1
handshake_retry_ticks 30
liveness_timeout_ticks 25
handshake_backoff_factor 2
handshake_backoff_cap_ticks 64
max_handshake_retries 6
suspect_ttl_ticks 60
max_ticks 20000

profile dsl up 96.0 down 768.0 delay 3 jitter 1 loss 0.01
profile mobile up 48.0 down 200.0 delay 6 jitter 4 ge 0.02 0.5 0.03 0.2
access 0 dsl
access 3 mobile
access default dsl

arrival flash 200 3 ramp 60
arrival poisson 50 4 0.05 7

crash 120 3
restart 300 3
stall 150 250 4
blackout 100 180 0 1

gate deadline 15000
gate max_failed_sessions 4
gate control_budget 500000
)");

  EXPECT_EQ(scenario.name, "kitchen-sink");
  EXPECT_EQ(scenario.peers, 6u);
  EXPECT_EQ(scenario.fed, 2u);
  EXPECT_EQ(scenario.strategy, overlay::Strategy::kRandom);
  EXPECT_EQ(scenario.mtu, 900u);
  EXPECT_TRUE(scenario.flow_control);
  EXPECT_EQ(scenario.suspect_ttl_ticks, 60u);
  EXPECT_EQ(scenario.max_ticks, 20000u);

  ASSERT_EQ(scenario.profiles.size(), 2u);
  EXPECT_EQ(scenario.profiles[0].name, "dsl");
  EXPECT_DOUBLE_EQ(scenario.profiles[0].up_rate, 96.0);
  EXPECT_DOUBLE_EQ(scenario.profiles[0].down_rate, 768.0);
  EXPECT_EQ(scenario.profiles[1].delay_ticks, 6u);
  EXPECT_DOUBLE_EQ(scenario.profiles[1].ge_loss_bad, 0.5);

  // access map + default: explicit beats default; everyone else falls back.
  EXPECT_EQ(scenario.profile_index(0), std::optional<std::size_t>{0});
  EXPECT_EQ(scenario.profile_index(3), std::optional<std::size_t>{1});
  EXPECT_EQ(scenario.profile_index(5), std::optional<std::size_t>{0});

  ASSERT_EQ(scenario.arrivals.size(), 2u);
  EXPECT_EQ(scenario.arrivals[0].kind, ArrivalProcess::Kind::kFlash);
  EXPECT_EQ(scenario.arrivals[0].ramp_ticks, 60u);
  EXPECT_EQ(scenario.arrivals[1].kind, ArrivalProcess::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(scenario.arrivals[1].rate, 0.05);
  EXPECT_EQ(scenario.arrivals[1].seed, 7u);

  EXPECT_EQ(scenario.faults.crashes.size(), 1u);
  EXPECT_EQ(scenario.faults.stalls[0].until, 250u);
  EXPECT_EQ(scenario.faults.blackouts[0].receiver, 1u);

  EXPECT_EQ(scenario.gates.deadline_ticks, 15000u);
  EXPECT_EQ(scenario.gates.max_failed_sessions, 4u);
  EXPECT_EQ(scenario.gates.control_budget_bytes, 500000u);
}

TEST(ScenarioParse, DefaultsAreUsableWithoutOptionalSections) {
  const auto scenario = Scenario::parse_text("name tiny\npeers 3\n");
  EXPECT_TRUE(scenario.profiles.empty());
  EXPECT_TRUE(scenario.arrivals.empty());
  EXPECT_TRUE(scenario.faults.empty());
  EXPECT_FALSE(scenario.access_default.has_value());
  EXPECT_EQ(scenario.profile_index(0), std::nullopt);
}

// --- Fuzz-style rejection corpus -------------------------------------------
// Every entry is a malformed file that must throw with the origin, the line
// number, and a message that tells the author what to fix.

TEST(ScenarioParse, RejectsTruncatedValues) {
  expect_rejected("peers\n", {"corpus.scn", "line 1", "non-negative integer"});
  expect_rejected("name tiny\nprofile\n", {"line 2", "profile needs a name"});
  expect_rejected("profile dsl up\n", {"line 1", "up", "rate"});
  expect_rejected("arrival flash 10\n", {"line 1", "count"});
  expect_rejected("arrival poisson 10 3 0.5\n", {"line 1", "seed"});
  expect_rejected("stall 100 200\n", {"line 1", "peer"});
  expect_rejected("gate\n", {"line 1", "gate needs a kind"});
  expect_rejected("access 2\n", {"line 1", "profile name"});
}

TEST(ScenarioParse, RejectsDuplicateKeys) {
  expect_rejected("peers 4\npeers 5\n", {"line 2", "duplicate key 'peers'"});
  expect_rejected("seed 1\nseed 1\n", {"line 2", "duplicate key 'seed'"});
  expect_rejected("profile dsl up 10\nprofile dsl down 20\n",
                  {"line 2", "duplicate profile 'dsl'"});
  expect_rejected(
      "profile a up 1\naccess 0 a\naccess 0 a\n",
      {"line 3", "duplicate access for peer 0"});
  expect_rejected(
      "profile a up 1\naccess default a\naccess default a\n",
      {"line 3", "duplicate 'access default'"});
  expect_rejected("gate deadline 10\ngate deadline 20\n",
                  {"line 2", "duplicate gate 'deadline'"});
}

TEST(ScenarioParse, RejectsOutOfRangeValues) {
  expect_rejected("profile a loss 1.5\n", {"line 1", "probability in [0, 1]"});
  expect_rejected("profile a loss -0.1\n", {"line 1", "probability"});
  expect_rejected("profile a up -5\n", {"line 1", "non-negative rate"});
  expect_rejected("profile a ge 0.1 0.5 0.2 0\n",
                  {"line 1", "p_bad_good must be > 0"});
  expect_rejected("profile a ge 0.1 0 0.2 0.3\n",
                  {"line 1", "loss_bad must be > 0"});
  expect_rejected("arrival poisson 10 3 0 5\n", {"line 1", "rate must be > 0"});
  expect_rejected("arrival flash 10 0\n", {"line 1", "count must be >= 1"});
  expect_rejected("peers -2\n", {"line 1", "non-negative integer"});
  expect_rejected("flow_control 2\n", {"line 1", "0 or 1"});
  expect_rejected("stall 200 100 1\n", {"line 1", "until > from"});
  expect_rejected("blackout 100 90 0 1\n", {"line 1", "until > from"});
  expect_rejected("blackout 10 90 2 2\n", {"line 1", "distinct peers"});
}

TEST(ScenarioParse, RejectsUnknownNames) {
  expect_rejected("bogus_key 7\n", {"line 1", "unknown key 'bogus_key'"});
  expect_rejected("strategy warpdrive\n",
                  {"line 1", "unknown strategy 'warpdrive'"});
  expect_rejected("profile a up 1 zap 3\n",
                  {"line 1", "unknown profile attribute 'zap'"});
  expect_rejected("arrival comet 10 3\n",
                  {"line 1", "unknown arrival kind 'comet'"});
  expect_rejected("gate wormhole 9\n", {"line 1", "unknown gate 'wormhole'"});
  expect_rejected("access 1 cable\n",
                  {"line 1", "unknown profile 'cable'"});
}

TEST(ScenarioParse, RejectsTrailingTokens) {
  expect_rejected("peers 4 5\n", {"line 1", "trailing tokens"});
  expect_rejected("crash 10 2 junk\n", {"line 1", "trailing tokens"});
  expect_rejected("arrival flash 10 2 surge 30\n",
                  {"line 1", "trailing tokens"});
}

TEST(ScenarioParse, RejectsCrossLineInconsistencies) {
  expect_rejected("peers 1\n", {"peers must be >= 2"});
  expect_rejected("peers 4\nfed 5\n", {"fed must be in [1, peers]"});
  expect_rejected("content_bytes 100\nblock_size 64\n",
                  {"multiple of block_size"});
  expect_rejected("peers 4\ncrash 10 9\n", {"beyond the swarm population"});
  // ...but a fault aimed at an arrival-process joiner is fine.
  EXPECT_NO_THROW(Scenario::parse_text(
      "peers 4\narrival flash 50 3\ncrash 100 6\n"));
  expect_rejected("peers 4\nprofile a up 1\naccess 7 a\n",
                  {"line 3", "beyond the swarm population"});
  expect_rejected("max_ticks 0\n", {"max_ticks must be > 0"});
}

TEST(ScenarioParse, FileOpenFailureIsActionable) {
  try {
    Scenario::parse_file("/nonexistent/path/x.scn");
    FAIL();
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("cannot open"),
              std::string::npos);
  }
}

// --- Arrival generation -----------------------------------------------------

TEST(ScenarioArrivals, FlashWithoutRampIsOneJoinEvent) {
  ArrivalProcess flash;
  flash.kind = ArrivalProcess::Kind::kFlash;
  flash.at = 100;
  flash.count = 5;
  const auto joins = core::generate_arrivals({flash});
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].at, 100u);
  EXPECT_EQ(joins[0].count, 5u);
}

TEST(ScenarioArrivals, FlashRampSpreadsJoinersAcrossTheWindow) {
  ArrivalProcess flash;
  flash.kind = ArrivalProcess::Kind::kFlash;
  flash.at = 100;
  flash.count = 4;
  flash.ramp_ticks = 40;
  const auto joins = core::generate_arrivals({flash});
  ASSERT_EQ(joins.size(), 4u);
  EXPECT_EQ(joins[0].at, 100u);
  EXPECT_EQ(joins[1].at, 110u);
  EXPECT_EQ(joins[2].at, 120u);
  EXPECT_EQ(joins[3].at, 130u);
  for (const auto& join : joins) EXPECT_EQ(join.count, 1u);
}

TEST(ScenarioArrivals, PoissonIsDeterministicSortedAndComplete) {
  ArrivalProcess poisson;
  poisson.kind = ArrivalProcess::Kind::kPoisson;
  poisson.at = 50;
  poisson.count = 16;
  poisson.rate = 0.1;
  poisson.seed = 42;
  const auto a = core::generate_arrivals({poisson});
  const auto b = core::generate_arrivals({poisson});
  ASSERT_EQ(a.size(), 16u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << "poisson draw " << i << " not reproducible";
    if (i > 0) {
      EXPECT_GE(a[i].at, a[i - 1].at);
    }
    EXPECT_GE(a[i].at, 50u);
    total += a[i].count;
  }
  EXPECT_EQ(total, 16u);

  poisson.seed = 43;  // a different seed must give a different point process
  const auto c = core::generate_arrivals({poisson});
  bool any_different = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_different = any_different || c[i].at != a[i].at;
  }
  EXPECT_TRUE(any_different);
}

TEST(ScenarioArrivals, MergedProcessesAreSortedByTime) {
  ArrivalProcess late_flash;
  late_flash.kind = ArrivalProcess::Kind::kFlash;
  late_flash.at = 500;
  late_flash.count = 2;
  ArrivalProcess early;
  early.kind = ArrivalProcess::Kind::kPoisson;
  early.at = 10;
  early.count = 6;
  early.rate = 0.2;
  early.seed = 9;
  const auto joins = core::generate_arrivals({late_flash, early});
  for (std::size_t i = 1; i < joins.size(); ++i) {
    EXPECT_GE(joins[i].at, joins[i - 1].at);
  }
}

// --- Edge composition -------------------------------------------------------

TEST(ScenarioEdges, BottleneckRateDelaySumAndLossComposition) {
  LinkProfile dsl;
  dsl.up_rate = 96.0;
  dsl.down_rate = 768.0;
  dsl.delay_ticks = 3;
  dsl.jitter_ticks = 1;
  dsl.loss_rate = 0.01;
  LinkProfile fiber;
  fiber.up_rate = 5000.0;
  fiber.down_rate = 5000.0;
  fiber.delay_ticks = 1;

  wire::ChannelConfig base;
  base.mtu = 900;

  // dsl -> fiber: the DSL uplink is the bottleneck.
  const auto up = core::compose_edge(&dsl, &fiber, base);
  EXPECT_DOUBLE_EQ(up.rate_bytes_per_tick, 96.0);
  EXPECT_EQ(up.delay_ticks, 4u);
  EXPECT_EQ(up.jitter_ticks, 1u);
  EXPECT_NEAR(up.loss_rate, 0.01, 1e-12);
  EXPECT_EQ(up.mtu, 900u);

  // fiber -> dsl: the DSL downlink caps the edge instead.
  const auto down = core::compose_edge(&fiber, &dsl, base);
  EXPECT_DOUBLE_EQ(down.rate_bytes_per_tick, 768.0);

  // Unshaped far end (nullptr): only the shaped side contributes; a zero
  // (unlimited) rate on one side must not erase the other's cap.
  const auto half = core::compose_edge(&dsl, nullptr, base);
  EXPECT_DOUBLE_EQ(half.rate_bytes_per_tick, 96.0);
  EXPECT_EQ(half.delay_ticks, 3u);
  const auto none = core::compose_edge(nullptr, nullptr, base);
  EXPECT_DOUBLE_EQ(none.rate_bytes_per_tick, 0.0);
  EXPECT_DOUBLE_EQ(none.loss_rate, 0.0);

  // Independent losses compose multiplicatively.
  LinkProfile lossy = dsl;
  lossy.loss_rate = 0.2;
  const auto both = core::compose_edge(&dsl, &lossy, base);
  EXPECT_NEAR(both.loss_rate, 1.0 - 0.99 * 0.8, 1e-12);
}

TEST(ScenarioEdges, GilbertElliottCarriesOverWithFarPlainLossFolded) {
  LinkProfile mobile;
  mobile.ge_loss_good = 0.02;
  mobile.ge_loss_bad = 0.5;
  mobile.ge_p_good_bad = 0.03;
  mobile.ge_p_bad_good = 0.2;
  LinkProfile dsl;
  dsl.loss_rate = 0.1;

  const auto edge = core::compose_edge(&mobile, &dsl, wire::ChannelConfig{});
  EXPECT_DOUBLE_EQ(edge.loss_rate, 0.0) << "GE replaces the Bernoulli draw";
  EXPECT_NEAR(edge.ge_loss_good, 1.0 - 0.98 * 0.9, 1e-12);
  EXPECT_NEAR(edge.ge_loss_bad, 1.0 - 0.5 * 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(edge.ge_p_good_bad, 0.03);
  EXPECT_DOUBLE_EQ(edge.ge_p_bad_good, 0.2);

  // Two chains: the burstier one (larger stationary bad share) wins.
  LinkProfile worse = mobile;
  worse.ge_p_good_bad = 0.1;  // bad share 1/3 vs mobile's ~0.13
  const auto contested =
      core::compose_edge(&mobile, &worse, wire::ChannelConfig{});
  EXPECT_DOUBLE_EQ(contested.ge_p_good_bad, 0.1);
}

// --- Compile + run: the three-driver determinism contract -------------------

constexpr char kRunnableScenario[] = R"(name unit-mixed
peers 5
fed 2
content_bytes 768
block_size 64
seed 1234
refresh_interval 40
flow_control 1
handshake_retry_ticks 24
liveness_timeout_ticks 30
handshake_backoff_factor 2
handshake_backoff_cap_ticks 64
max_handshake_retries 6
suspect_ttl_ticks 60
max_ticks 30000
profile dsl up 400 down 1200 delay 2 jitter 1 loss 0.005
profile fiber up 4000 down 4000 delay 1
access 0 fiber
access default dsl
arrival flash 150 2 ramp 30
crash 120 3
restart 260 3
gate max_failed_sessions 6
)";

TEST(ScenarioCompile, LowersShapeFaultsAndGates) {
  const auto compiled =
      core::compile_scenario(Scenario::parse_text(kRunnableScenario));
  EXPECT_EQ(compiled.name, "unit-mixed");
  EXPECT_EQ(compiled.peers, 5u);
  EXPECT_EQ(compiled.fed, 2u);
  EXPECT_EQ(compiled.content.size(), 768u);
  EXPECT_EQ(compiled.total_joins, 2u);
  // Ramped joiners at 150 and 165; the restart at 260 is the last boundary.
  EXPECT_EQ(compiled.last_fault_tick, 260u);
  ASSERT_TRUE(compiled.options.faults);
  EXPECT_EQ(compiled.options.faults->joins.size(), 2u);
  ASSERT_TRUE(compiled.options.link_config);
  // Edge 1 -> 0 (dsl up, fiber down): DSL uplink bottleneck.
  const auto edge = compiled.options.link_config(1, 0);
  EXPECT_DOUBLE_EQ(edge.rate_bytes_per_tick, 400.0);
  EXPECT_EQ(edge.mtu, compiled.options.link.mtu);
  // A joiner beyond the initial population falls back to the default class.
  const auto join_edge = compiled.options.link_config(0, 6);
  EXPECT_DOUBLE_EQ(join_edge.rate_bytes_per_tick, 1200.0);

  // Same seed -> identical content; different seed -> different content.
  auto reseeded = Scenario::parse_text(kRunnableScenario);
  EXPECT_EQ(core::compile_scenario(reseeded).content, compiled.content);
  reseeded.seed = 77;
  EXPECT_NE(core::compile_scenario(reseeded).content, compiled.content);
}

TEST(ScenarioRun, ThreeDriversAgreeAndGatesPass) {
  const auto compiled =
      core::compile_scenario(Scenario::parse_text(kRunnableScenario));

  core::ContentDeliveryService lockstep(compiled.content, compiled.options);
  core::seed_scenario_peers(lockstep, compiled);
  core::drive_scenario_lockstep(lockstep, compiled);
  const auto baseline = core::harvest_scenario(lockstep);

  core::ContentDeliveryService jump(compiled.content, compiled.options);
  core::seed_scenario_peers(jump, compiled);
  jump.run(compiled.max_ticks);
  const auto jumped = core::harvest_scenario(jump);

  core::ShardedDelivery shards1(compiled.content, compiled.options,
                                core::ShardOptions{1});
  core::seed_scenario_peers(shards1, compiled);
  shards1.run(compiled.max_ticks);
  const auto sharded = core::harvest_scenario(shards1);

  EXPECT_TRUE(baseline.same_trajectory(jumped))
      << "event-loop jump diverged from lockstep";
  EXPECT_TRUE(baseline.same_trajectory(sharded))
      << "shards=1 diverged from the legacy engine";
  EXPECT_GT(jumped.ticks_skipped, 0u) << "the jump driver must actually jump";

  EXPECT_EQ(baseline.peer_count, 7u) << "both ramped joiners must arrive";
  const auto verdict = core::evaluate_gates(baseline, compiled);
  EXPECT_TRUE(verdict.survivors_completed);
  EXPECT_TRUE(verdict.deadline_met);
  EXPECT_TRUE(verdict.failures_within_budget);
  EXPECT_TRUE(verdict.control_within_budget);
  EXPECT_TRUE(verdict.pass());
}

TEST(ScenarioGatesEval, EachGateTripsIndependently) {
  core::CompiledScenario compiled;
  compiled.max_ticks = 1000;
  compiled.gates.max_failed_sessions = 1;
  compiled.gates.control_budget_bytes = 100;

  core::ScenarioOutcome outcome;
  outcome.peer_count = 2;
  outcome.completion_ticks = {40, 60};
  outcome.down_at_end = {false, false};
  outcome.failed_sessions = 1;
  outcome.control_bytes = 100;
  EXPECT_TRUE(core::evaluate_gates(outcome, compiled).pass());

  auto late = outcome;
  compiled.gates.deadline_ticks = 50;
  EXPECT_FALSE(core::evaluate_gates(late, compiled).deadline_met);
  compiled.gates.deadline_ticks = 0;

  auto stranded = outcome;
  stranded.completion_ticks[1] = 0;
  const auto verdict = core::evaluate_gates(stranded, compiled);
  EXPECT_FALSE(verdict.survivors_completed);
  // ...unless that peer is down at the end (crash without restart).
  stranded.down_at_end[1] = true;
  EXPECT_TRUE(core::evaluate_gates(stranded, compiled).survivors_completed);

  auto failures = outcome;
  failures.failed_sessions = 2;
  EXPECT_FALSE(core::evaluate_gates(failures, compiled).failures_within_budget);

  auto chatty = outcome;
  chatty.control_bytes = 101;
  EXPECT_FALSE(core::evaluate_gates(chatty, compiled).control_within_budget);
  compiled.gates.control_budget_bytes = 0;  // 0 disables the budget
  EXPECT_TRUE(core::evaluate_gates(chatty, compiled).control_within_budget);
}

}  // namespace
}  // namespace icd

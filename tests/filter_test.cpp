// Tests for icd::filter: Bloom filters (including the paper's Section 5.2
// false-positive figures), counting Bloom filters and the partitioned
// "beta mod rho" pipeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "filter/bloom.hpp"
#include "filter/counting_bloom.hpp"
#include "filter/partitioned_bloom.hpp"
#include "util/random.hpp"

namespace icd::filter {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng());
  return keys;
}

TEST(BloomFilter, NoFalseNegatives) {
  const auto keys = random_keys(5000, 1);
  auto filter = BloomFilter::with_bits_per_element(keys.size(), 8.0);
  filter.insert_all(keys);
  for (const auto key : keys) {
    EXPECT_TRUE(filter.contains(key));
  }
}

TEST(BloomFilter, RejectsZeroGeometry) {
  EXPECT_THROW(BloomFilter(0, 3), std::invalid_argument);
  EXPECT_THROW(BloomFilter(64, 0), std::invalid_argument);
}

TEST(BloomFilter, FillRatioMatchesTheory) {
  // Expected fill ratio is 1 - e^{-kn/m} (~0.53 at k = 6, m/n = 8).
  const auto keys = random_keys(10000, 2);
  auto filter = BloomFilter::with_bits_per_element(keys.size(), 8.0);
  filter.insert_all(keys);
  const double k = static_cast<double>(filter.hash_count());
  const double expected =
      1.0 - std::exp(-k * static_cast<double>(keys.size()) /
                     static_cast<double>(filter.bit_count()));
  EXPECT_NEAR(filter.fill_ratio(), expected, 0.02);
}

// The paper's two headline operating points: "using just four bits per
// element and three hash functions yields a false positive probability of
// 14.7%; using eight bits per element and five hash functions yields a
// false positive probability of 2.2%."
struct FpOperatingPoint {
  double bits_per_element;
  std::size_t hashes;
  double expected_fp;
};

class BloomFpRate : public ::testing::TestWithParam<FpOperatingPoint> {};

TEST_P(BloomFpRate, FormulaMatchesPaper) {
  const auto [bpe, k, expected] = GetParam();
  constexpr std::size_t n = 10000;
  const auto m = static_cast<std::size_t>(bpe * n);
  EXPECT_NEAR(BloomFilter::fp_rate(m, n, k), expected, 0.002);
}

TEST_P(BloomFpRate, MeasuredRateMatchesFormula) {
  const auto [bpe, k, expected] = GetParam();
  constexpr std::size_t n = 10000;
  const auto keys = random_keys(n, 3);
  BloomFilter filter(static_cast<std::size_t>(bpe * n), k);
  filter.insert_all(keys);

  util::Xoshiro256 rng(99);
  std::size_t false_positives = 0;
  constexpr std::size_t kProbes = 50000;
  for (std::size_t i = 0; i < kProbes; ++i) {
    // Fresh random keys collide with the inserted set with probability
    // ~n/2^64, i.e. never.
    if (filter.contains(rng())) ++false_positives;
  }
  const double measured =
      static_cast<double>(false_positives) / static_cast<double>(kProbes);
  EXPECT_NEAR(measured, expected, expected * 0.25 + 0.003);
}

INSTANTIATE_TEST_SUITE_P(
    PaperOperatingPoints, BloomFpRate,
    ::testing::Values(FpOperatingPoint{4.0, 3, 0.147},
                      FpOperatingPoint{8.0, 5, 0.022}));

TEST(BloomFilter, FpRateDecreasesWithBits) {
  double previous = 1.0;
  for (const double bpe : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    const auto k = static_cast<std::size_t>(bpe * 0.693 + 0.5);
    const double f = BloomFilter::fp_rate(
        static_cast<std::size_t>(bpe * 1000), 1000, std::max<std::size_t>(k, 1));
    EXPECT_LT(f, previous);
    previous = f;
  }
}

TEST(BloomFilter, UnionBehavesLikeUnionOfSets) {
  const auto keys_a = random_keys(1000, 4);
  const auto keys_b = random_keys(1000, 5);
  auto a = BloomFilter(16000, 5, 77);
  auto b = BloomFilter(16000, 5, 77);
  a.insert_all(keys_a);
  b.insert_all(keys_b);

  auto direct = BloomFilter(16000, 5, 77);
  direct.insert_all(keys_a);
  direct.insert_all(keys_b);

  a.merge_union(b);
  for (std::uint64_t probe = 0; probe < 5000; ++probe) {
    EXPECT_EQ(a.contains(probe), direct.contains(probe));
  }
}

TEST(BloomFilter, MergeRequiresCompatibleGeometry) {
  BloomFilter a(1000, 3, 1);
  BloomFilter b(1000, 3, 2);   // different seed
  BloomFilter c(2000, 3, 1);   // different size
  BloomFilter d(1000, 4, 1);   // different hash count
  EXPECT_THROW(a.merge_union(b), std::invalid_argument);
  EXPECT_THROW(a.merge_union(c), std::invalid_argument);
  EXPECT_THROW(a.merge_union(d), std::invalid_argument);
}

TEST(BloomFilter, IntersectionNeverLosesCommonElements) {
  const auto common = random_keys(500, 6);
  auto a = BloomFilter(16000, 5);
  auto b = BloomFilter(16000, 5);
  a.insert_all(common);
  b.insert_all(common);
  a.insert_all(random_keys(500, 7));
  b.insert_all(random_keys(500, 8));
  a.merge_intersect(b);
  for (const auto key : common) {
    EXPECT_TRUE(a.contains(key));
  }
}

TEST(BloomFilter, SerializationRoundTrip) {
  const auto keys = random_keys(2000, 9);
  auto filter = BloomFilter::with_bits_per_element(keys.size(), 8.0);
  filter.insert_all(keys);
  const auto bytes = filter.serialize();
  const auto restored = BloomFilter::deserialize(bytes);
  EXPECT_EQ(restored.bit_count(), filter.bit_count());
  EXPECT_EQ(restored.hash_count(), filter.hash_count());
  EXPECT_EQ(restored.inserted_count(), filter.inserted_count());
  for (const auto key : keys) EXPECT_TRUE(restored.contains(key));
  util::Xoshiro256 rng(10);
  for (int i = 0; i < 2000; ++i) {
    const auto probe = rng();
    EXPECT_EQ(filter.contains(probe), restored.contains(probe));
  }
}

TEST(BloomFilter, PaperSizeClaim) {
  // "Using four bits per element, we can create filters for 10,000 packets
  // using just 40,000 bits, which can fit into five 1 KB packets."
  auto filter = BloomFilter::with_bits_per_element(10000, 4.0);
  EXPECT_EQ(filter.bit_count(), 40000u);
  const auto bytes = filter.serialize().size();
  EXPECT_LE((bytes + 1023) / 1024, 5u);
}

TEST(CountingBloom, InsertEraseRestoresState) {
  CountingBloomFilter filter(8000, 4);
  const auto keys = random_keys(500, 11);
  for (const auto key : keys) filter.insert(key);
  for (const auto key : keys) EXPECT_TRUE(filter.contains(key));
  for (const auto key : keys) filter.erase(key);
  std::size_t still_present = 0;
  for (const auto key : keys) {
    if (filter.contains(key)) ++still_present;
  }
  // All counters were below saturation, so every key should be gone.
  EXPECT_EQ(still_present, 0u);
}

TEST(CountingBloom, NoFalseNegativesUnderChurn) {
  CountingBloomFilter filter(16000, 4);
  util::Xoshiro256 rng(12);
  std::vector<std::uint64_t> live;
  for (int round = 0; round < 2000; ++round) {
    if (!live.empty() && rng.next_bool(0.4)) {
      const auto idx = rng.next_below(live.size());
      filter.erase(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const auto key = rng();
      filter.insert(key);
      live.push_back(key);
    }
    // Invariant: every live key is still reported present.
    for (const auto key : live) ASSERT_TRUE(filter.contains(key));
  }
}

TEST(CountingBloom, SaturatedCountersAreSticky) {
  CountingBloomFilter filter(4, 1);  // tiny: forces collisions
  for (int i = 0; i < 100; ++i) filter.insert(7);
  for (int i = 0; i < 100; ++i) filter.erase(7);
  // The counter saturated at 15 and erase must not drive it to a false
  // negative for a key that is arguably still present.
  EXPECT_TRUE(filter.contains(7));
}

TEST(CountingBloom, ProjectsToBloomBits) {
  CountingBloomFilter filter(1000, 3);
  filter.insert(42);
  const auto bits = filter.to_bloom_bits();
  std::size_t set = 0;
  for (const bool b : bits) set += b;
  EXPECT_GE(set, 1u);
  EXPECT_LE(set, 3u);
}

TEST(PartitionedBloom, CoversExactlyOneResidueClass) {
  const auto keys = random_keys(4000, 13);
  PartitionedBloomFilter filter(keys, 8, 3, 8.0);
  for (const auto key : keys) {
    const bool in_class = PartitionedBloomFilter::residue_of(key, 8) == 3;
    EXPECT_EQ(filter.covers(key), in_class);
    if (in_class) EXPECT_TRUE(filter.contains(key));
  }
}

TEST(PartitionedBloom, ClassesAreBalanced) {
  const auto keys = random_keys(8000, 14);
  for (std::uint32_t beta = 0; beta < 4; ++beta) {
    PartitionedBloomFilter filter(keys, 4, beta, 8.0);
    EXPECT_NEAR(static_cast<double>(filter.covered_count()), 2000.0, 200.0);
  }
}

TEST(PartitionedBloom, RejectsBadParameters) {
  const auto keys = random_keys(10, 15);
  EXPECT_THROW(PartitionedBloomFilter(keys, 0, 0, 8.0), std::invalid_argument);
  EXPECT_THROW(PartitionedBloomFilter(keys, 4, 4, 8.0), std::invalid_argument);
}

TEST(PartitionedBloom, PipelineCoversAllKeysExactlyOnce) {
  const auto keys = random_keys(3000, 16);
  BloomFilterPipeline pipeline(keys, 6, 8.0);
  std::size_t covered = 0;
  std::size_t emitted = 0;
  while (auto filter = pipeline.next()) {
    covered += filter->covered_count();
    ++emitted;
    // No false negatives within the class.
    for (const auto key : keys) {
      if (filter->covers(key)) EXPECT_TRUE(filter->contains(key));
    }
  }
  EXPECT_EQ(emitted, 6u);
  EXPECT_EQ(covered, keys.size());
  EXPECT_TRUE(pipeline.exhausted());
  EXPECT_EQ(pipeline.next(), std::nullopt);
}

TEST(PartitionedBloom, PipelineFindsDifferencesSliceBySlice) {
  // Reconciliation use: A's pipeline lets B find B - A one residue class at
  // a time.
  auto keys_a = random_keys(2000, 17);
  auto keys_b = keys_a;
  const auto extra = random_keys(100, 18);
  keys_b.insert(keys_b.end(), extra.begin(), extra.end());

  BloomFilterPipeline pipeline(keys_a, 4, 8.0);
  std::size_t found = 0;
  while (auto filter = pipeline.next()) {
    for (const auto key : keys_b) {
      if (filter->covers(key) && !filter->contains(key)) ++found;
    }
  }
  // All 100 extras should be discovered modulo Bloom false positives.
  EXPECT_GE(found, 90u);
  EXPECT_LE(found, 100u);
}

}  // namespace
}  // namespace icd::filter

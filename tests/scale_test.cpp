// Massive-swarm scale armor: the incremental PlanningQueue property-tested
// against a naive full-rebuild reference, the jump ≡ lockstep full-engine
// pin under loss + timing + faults with the queue in the loop, the
// cost-balanced shard placement (results byte-identical, load provably
// moved), sampled admission determinism, and the post-completion memory
// budget (solver state released, bytes-per-peer bounded).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "core/delivery.hpp"
#include "core/event_loop.hpp"
#include "core/session_plan.hpp"
#include "core/sharded_delivery.hpp"
#include "util/random.hpp"

namespace icd {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

// --- PlanningQueue vs naive rebuilt reference -------------------------------

/// The reference the incremental queue must be indistinguishable from: a
/// plain per-key table, re-scanned from scratch on every operation.
struct NaivePlanner {
  std::vector<std::optional<core::Event>> live;

  std::optional<core::Event> peek() const {
    std::optional<core::Event> best;
    for (const auto& event : live) {
      if (!event) continue;
      if (!best || std::tie(event->at, event->kind, event->key) <
                       std::tie(best->at, best->kind, best->key)) {
        best = event;
      }
    }
    return best;
  }

  std::vector<std::uint64_t> take_due(std::uint64_t now) {
    std::vector<std::uint64_t> out;
    while (true) {
      const auto best = peek();
      if (!best || best->at >= now) break;
      out.push_back(best->key);
      live[best->key].reset();
    }
    return out;
  }
};

TEST(PlanningQueue, MatchesNaiveRebuildReferenceOnRandomScripts) {
  constexpr std::size_t kKeys = 48;
  const std::array<core::EventKind, 4> kinds = {
      core::EventKind::kOriginFeed, core::EventKind::kFrameArrival,
      core::EventKind::kSendCredit, core::EventKind::kService};
  for (std::uint64_t seed : {11ULL, 2026ULL, 0xfeedULL}) {
    util::Xoshiro256 rng(seed);
    core::PlanningQueue queue;
    queue.ensure_keys(kKeys);
    NaivePlanner naive;
    naive.live.resize(kKeys);
    std::uint64_t now = 0;
    // First round is always a full build (pending_full starts true), as
    // the engines do it: begin_rebuild + set every key.
    auto rebuild = [&] {
      queue.begin_rebuild();
      for (std::size_t k = 0; k < kKeys; ++k) queue.set(k, naive.live[k]);
    };
    rebuild();
    for (int step = 0; step < 4000; ++step) {
      const std::uint64_t op = rng.next_below(100);
      if (op < 55) {
        // Replace a key's entry (the replan path).
        const std::uint64_t key = rng.next_below(kKeys);
        const core::Event event{now + rng.next_below(40),
                                kinds[rng.next_below(kinds.size())], key};
        queue.set(key, event);
        naive.live[key] = event;
      } else if (op < 70) {
        // Key goes planless (complete / down / drained).
        const std::uint64_t key = rng.next_below(kKeys);
        queue.set(key, std::nullopt);
        naive.live[key].reset();
      } else if (op < 90) {
        // Advance time and pop everything due: identical keys in
        // identical (at, kind, key) order is the whole contract.
        now += rng.next_below(12);
        std::vector<std::uint64_t> got;
        queue.take_due(now, got);
        ASSERT_EQ(got, naive.take_due(now)) << "seed " << seed << " step "
                                            << step << " now " << now;
      } else if (op < 95) {
        // Engine-side invalidation (refresh / fault / membership).
        queue.invalidate_all();
        ASSERT_TRUE(queue.pending_full());
        rebuild();
      }
      const auto queue_peek = queue.peek();
      const auto naive_peek = naive.peek();
      ASSERT_EQ(queue_peek.has_value(), naive_peek.has_value());
      if (queue_peek) {
        ASSERT_EQ(queue_peek->at, naive_peek->at);
        ASSERT_EQ(queue_peek->kind, naive_peek->kind);
        ASSERT_EQ(queue_peek->key, naive_peek->key);
      }
    }
    // The script exercised the lazy-invalidation machinery, not a
    // degenerate path: entries were pushed, popped, skimmed, and the
    // garbage bound forced compactions.
    EXPECT_GT(queue.stats().pushes, 0u);
    EXPECT_GT(queue.stats().pops, 0u);
    EXPECT_GT(queue.stats().stale_skipped, 0u);
    EXPECT_GT(queue.stats().full_rebuilds, 0u);
    EXPECT_GT(queue.stats().ops(), queue.stats().pushes);
  }
}

// --- Full-engine pin: jump ≡ lockstep with the incremental planner ----------

core::DeliveryOptions timed_faulted_options() {
  core::DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 77;
  options.refresh_interval = 40;
  options.handshake_retry_ticks = 24;
  options.liveness_timeout_ticks = 60;
  options.suspect_ttl_ticks = 40;
  options.link.loss_rate = 0.06;
  options.link.delay_ticks = 2;
  options.link.jitter_ticks = 1;
  auto faults = std::make_shared<core::FaultPlan>();
  faults->crashes.push_back({30, 1});
  faults->restarts.push_back({90, 1});
  faults->stalls.push_back({50, 70, 2});
  faults->joins.push_back({60, 1, false});
  options.faults = faults;
  return options;
}

TEST(ScalePlanner, ShardedJumpEqualsLockstepUnderLossTimingAndFaults) {
  const auto content = random_content(6 * 1024, 99);
  constexpr std::size_t kPeers = 6;
  constexpr std::size_t kTicks = 3000;

  auto options = timed_faulted_options();
  options.jump_empty_ticks = false;
  core::ShardedDelivery lockstep(content, options, {.shards = 2});
  options.jump_empty_ticks = true;
  core::ShardedDelivery jumping(content, options, {.shards = 2});
  for (std::size_t p = 0; p < kPeers; ++p) {
    lockstep.add_peer("p" + std::to_string(p), p == 0);
    jumping.add_peer("p" + std::to_string(p), p == 0);
  }
  lockstep.run(kTicks);
  jumping.run(kTicks);

  ASSERT_EQ(lockstep.peer_count(), jumping.peer_count());
  for (std::size_t p = 0; p < lockstep.peer_count(); ++p) {
    EXPECT_EQ(lockstep.peer_complete(p), jumping.peer_complete(p)) << p;
    EXPECT_EQ(lockstep.peer_completion_tick(p),
              jumping.peer_completion_tick(p))
        << p;
    if (lockstep.peer_complete(p)) {
      EXPECT_EQ(lockstep.peer_content(p), jumping.peer_content(p)) << p;
    }
    const auto a = lockstep.session_result(p);
    const auto b = jumping.session_result(p);
    EXPECT_EQ(a.failed_peers.size(), b.failed_peers.size()) << p;
  }
  const auto lock_totals = lockstep.link_totals();
  const auto jump_totals = jumping.link_totals();
  EXPECT_EQ(lock_totals.control_bytes, jump_totals.control_bytes);
  EXPECT_EQ(lock_totals.data_bytes, jump_totals.data_bytes);
  EXPECT_EQ(lock_totals.control_frames, jump_totals.control_frames);
  EXPECT_EQ(lock_totals.data_frames, jump_totals.data_frames);
  // The incremental queue was in the loop (incremental rounds, not
  // rebuild-every-tick). This scenario feeds origins every tick, so the
  // jump driver legitimately finds no empty gaps to skip — equality above
  // is the real assertion.
  EXPECT_GT(jumping.planner_stats().pops, 0u);
}

// --- Cost-balanced placement ------------------------------------------------

TEST(ScaleBalance, BalanceByCostIsDeterministicLpt) {
  const std::vector<std::uint64_t> cost = {100, 3, 3, 3, 3, 3, 3, 40};
  const auto assignment = core::balance_by_cost(cost, 2);
  ASSERT_EQ(assignment.size(), cost.size());
  // Heaviest first onto the (lowest-index) empty bin.
  EXPECT_EQ(assignment[0], 0u);
  // Second-heaviest onto the other bin.
  EXPECT_EQ(assignment[7], 1u);
  // LPT keeps the spread tight: the light peers all pile opposite the
  // hot one until loads cross.
  std::vector<std::uint64_t> load(2, 0);
  for (std::size_t i = 0; i < cost.size(); ++i) load[assignment[i]] += cost[i];
  EXPECT_EQ(load[0] + load[1], 158u);
  EXPECT_LE(std::max(load[0], load[1]) - std::min(load[0], load[1]), 42u);
  // Deterministic, and shards=1 degenerates to all-zero.
  EXPECT_EQ(assignment, core::balance_by_cost(cost, 2));
  EXPECT_EQ(core::balance_by_cost(cost, 1),
            std::vector<std::size_t>(cost.size(), 0));
}

TEST(ScaleBalance, RebalancePreservesResultsAndMovesLoad) {
  const auto content = random_content(8 * 1024, 4242);
  constexpr std::size_t kPeers = 8;
  constexpr std::size_t kTicks = 1500;
  core::DeliveryOptions options;
  options.block_size = 128;
  options.session_seed = 21;
  options.refresh_interval = 30;
  options.link.delay_ticks = 1;

  // Skew: peer 0 is the only origin-fed peer, so early refreshes route
  // most downloads at it and its shard runs hot.
  core::ShardedDelivery fixed(content, options, {.shards = 2});
  core::ShardedDelivery balanced(content, options,
                                 {.shards = 2, .rebalance_epochs = 1});
  for (std::size_t p = 0; p < kPeers; ++p) {
    fixed.add_peer("p" + std::to_string(p), p == 0);
    balanced.add_peer("p" + std::to_string(p), p == 0);
  }
  fixed.run(kTicks);
  balanced.run(kTicks);

  // Placement is semantics-free: identical results, byte for byte.
  for (std::size_t p = 0; p < fixed.peer_count(); ++p) {
    ASSERT_EQ(fixed.peer_complete(p), balanced.peer_complete(p)) << p;
    EXPECT_EQ(fixed.peer_completion_tick(p), balanced.peer_completion_tick(p))
        << p;
    if (fixed.peer_complete(p)) {
      EXPECT_EQ(fixed.peer_content(p), balanced.peer_content(p)) << p;
    }
  }
  const auto fixed_totals = fixed.link_totals();
  const auto balanced_totals = balanced.link_totals();
  EXPECT_EQ(fixed_totals.control_bytes, balanced_totals.control_bytes);
  EXPECT_EQ(fixed_totals.data_bytes, balanced_totals.data_bytes);

  // The rebalance actually moved somebody off the admission placement...
  bool moved = false;
  for (std::size_t p = 0; p < balanced.peer_count(); ++p) {
    if (balanced.shard_of(p) != p % balanced.shards()) moved = true;
    EXPECT_EQ(fixed.shard_of(p), p % fixed.shards()) << p;
  }
  EXPECT_TRUE(moved);
  // ...and the deterministic cost spread is no worse than the id%N
  // placement's on the same (identical) workload.
  auto spread = [](const std::vector<std::uint64_t>& cost) {
    const auto [lo, hi] = std::minmax_element(cost.begin(), cost.end());
    return *hi - *lo;
  };
  EXPECT_LE(spread(balanced.shard_cost_units()),
            spread(fixed.shard_cost_units()));
}

// --- Sampled admission ------------------------------------------------------

TEST(ScaleAdmission, SampledAdmissionCompletesAndIsDeterministic) {
  const auto content = random_content(4 * 1024, 7);
  constexpr std::size_t kPeers = 24;
  constexpr std::size_t kTicks = 4000;
  core::DeliveryOptions options;
  options.block_size = 128;
  options.session_seed = 5;
  options.refresh_interval = 30;
  options.admission_sample = 4;

  auto run = [&] {
    core::ContentDeliveryService service(content, options);
    for (std::size_t p = 0; p < kPeers; ++p) {
      service.add_peer("p" + std::to_string(p), p % 8 == 0);
    }
    service.run(kTicks);
    std::vector<std::size_t> ticks;
    for (std::size_t p = 0; p < kPeers; ++p) {
      EXPECT_TRUE(service.peer_complete(p)) << p;
      ticks.push_back(service.peer_completion_tick(p));
    }
    return ticks;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
}

// --- Memory budget ----------------------------------------------------------

TEST(ScaleMemory, AuditShrinksAfterCompletionAndBoundsBytesPerPeer) {
  const auto content = random_content(8 * 1024, 31);
  constexpr std::size_t kPeers = 8;
  core::DeliveryOptions options;
  options.block_size = 256;
  options.session_seed = 17;
  options.refresh_interval = 25;
  core::ContentDeliveryService service(content, options);
  for (std::size_t p = 0; p < kPeers; ++p) {
    service.add_peer("p" + std::to_string(p), p == 0);
  }

  // Capture the audit mid-download (decoders and handshake caches live).
  std::size_t mid_total = 0;
  for (std::size_t t = 0; t < 5000; ++t) {
    service.tick();
    std::size_t incomplete = 0;
    for (std::size_t p = 0; p < kPeers; ++p) {
      incomplete += service.peer_complete(p) ? 0 : 1;
    }
    if (mid_total == 0 && incomplete <= kPeers / 2) {
      const auto audit = service.memory_audit();
      mid_total = audit.total();
      ASSERT_GT(audit.decoder_bytes, 0u);
    }
    if (incomplete == 0) break;
  }
  ASSERT_GT(mid_total, 0u) << "swarm never reached half-complete";
  for (std::size_t p = 0; p < kPeers; ++p) {
    ASSERT_TRUE(service.peer_complete(p)) << p;
  }
  // Tick past the next refresh so the teardown path compacts every
  // completed peer's solver state (run() short-circuits once the swarm is
  // complete; tick() still executes refresh boundaries).
  for (std::size_t t = 0; t <= options.refresh_interval; ++t) service.tick();

  const auto final_audit = service.memory_audit();
  EXPECT_EQ(final_audit.peers, kPeers);
  // Retired sessions: no endpoint or link state left at all.
  EXPECT_EQ(final_audit.endpoint_bytes, 0u);
  EXPECT_EQ(final_audit.link_bytes, 0u);
  // Solver state (equations, waiting lists, pending queues) released:
  // well under the mid-run footprint, and bounded per peer. The bound is
  // the regression pin — decoded blocks for 8 KiB of content plus the
  // symbol-id/sketch bookkeeping, far below the solver's working set.
  EXPECT_LT(final_audit.total(), mid_total);
  EXPECT_LT(final_audit.bytes_per_peer(), 64 * 1024u);
  // Completed peers still serve: their decoded content survives compaction.
  for (std::size_t p = 0; p < kPeers; ++p) {
    EXPECT_EQ(service.peer_content(p), content) << p;
  }
  // And the per-session result surfaces the per-peer figure.
  EXPECT_GT(service.session_result(0).memory_bytes, 0u);
  EXPECT_LT(service.session_result(0).memory_bytes, 64 * 1024u);
  // Solver op counters ride along: a completed peer fed equations through
  // both peeling levels and recovered at least every source block.
  const auto stats = service.session_result(0).decoder_stats;
  EXPECT_GT(stats.equations_added, 0u);
  EXPECT_GE(stats.recovered, service.parameters().block_count);
  EXPECT_GT(stats.substitutions, 0u);
}

}  // namespace
}  // namespace icd

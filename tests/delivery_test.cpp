// Tests for the ContentDeliveryService facade: full-fidelity end-to-end
// delivery with origin mirrors, admission-controlled peer sessions, and
// verification of reconstructed content.
#include <gtest/gtest.h>

#include <vector>

#include "core/delivery.hpp"
#include "util/random.hpp"

namespace icd::core {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

DeliveryOptions small_options() {
  DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 13;
  options.refresh_interval = 25;
  return options;
}

TEST(DeliveryService, SingleSubscriberDecodesFromOrigin) {
  const auto content = random_content(64 * 200, 1);
  ContentDeliveryService service(content, small_options());
  const auto id = service.add_peer("solo", /*subscribe_origin=*/true);
  ASSERT_TRUE(service.run(2000));
  EXPECT_TRUE(service.peer_complete(id));
  EXPECT_EQ(service.peer_content(id), content);
}

TEST(DeliveryService, NonSubscribersFedByPeers) {
  // Two origin-fed peers, three peers reachable only via the overlay: the
  // informed peer sessions must carry the content the rest of the way.
  const auto content = random_content(64 * 150, 2);
  ContentDeliveryService service(content, small_options());
  std::vector<std::size_t> ids;
  ids.push_back(service.add_peer("seed-a", true));
  ids.push_back(service.add_peer("seed-b", true));
  ids.push_back(service.add_peer("leaf-1", false));
  ids.push_back(service.add_peer("leaf-2", false));
  ids.push_back(service.add_peer("leaf-3", false));
  ASSERT_TRUE(service.run(6000));
  for (const auto id : ids) {
    EXPECT_TRUE(service.peer_complete(id));
    EXPECT_EQ(service.peer_content(id), content);
  }
}

TEST(DeliveryService, MirrorsSpeedUpSubscribers) {
  const auto content = random_content(64 * 200, 3);

  ContentDeliveryService one(content, small_options());
  one.add_peer("a", true);
  ASSERT_TRUE(one.run(4000));
  const auto single_ticks = one.ticks();

  ContentDeliveryService two(content, small_options());
  two.add_mirror();
  // Peers round-robin across origins; a pair of subscribers shares the
  // load and both still finish.
  two.add_peer("a", true);
  two.add_peer("b", true);
  ASSERT_TRUE(two.run(4000));
  // The mirrored service serves double the peers in comparable time.
  EXPECT_LE(two.ticks(), single_ticks * 2);
}

TEST(DeliveryService, CompletedPeersServeLateJoiners) {
  const auto content = random_content(64 * 120, 4);
  auto options = small_options();
  ContentDeliveryService service(content, options);
  const auto seeder = service.add_peer("seeder", true);
  ASSERT_TRUE(service.run(3000));
  ASSERT_TRUE(service.peer_complete(seeder));

  // Late joiner with no origin subscription: it can only get content from
  // the completed seeder, which serves re-encoded fresh symbols.
  const auto late = service.add_peer("late", false);
  ASSERT_TRUE(service.run(5000));
  EXPECT_TRUE(service.peer_complete(late));
  EXPECT_EQ(service.peer_content(late), content);
}

TEST(DeliveryService, ShortRefreshIntervalDoesNotStarveNearCompletePeers) {
  // Regression: with short sessions a nearly-complete peer's sketch
  // resembles every candidate above the admission cutoff, and without the
  // starvation fallback refresh_sessions stops creating downloads — the
  // peer stalls a few symbols short of decoding, forever.
  const auto content = random_content(64 * 150, 9);
  auto options = small_options();
  options.refresh_interval = 10;
  options.link.loss_rate = 0.1;  // over lossy edges, too
  ContentDeliveryService service(content, options);
  service.add_peer("seed", true);
  const auto leaf = service.add_peer("leaf", false);
  ASSERT_TRUE(service.run(6000));
  EXPECT_EQ(service.peer_content(leaf), content);
}

TEST(DeliveryService, TinyLinkMtuIsDiagnosableNotSilent) {
  // An MTU below the fragment overhead means no frame can ever cross the
  // peer links; the service must stall visibly (frames_refused) instead
  // of reporting an idle wire.
  const auto content = random_content(64 * 50, 11);
  auto options = small_options();
  options.link.mtu = 16;
  ContentDeliveryService service(content, options);
  service.add_peer("seed", true);
  const auto leaf = service.add_peer("leaf", false);
  EXPECT_FALSE(service.run(100));
  EXPECT_FALSE(service.peer_complete(leaf));
  const auto totals = service.link_totals();
  EXPECT_GT(totals.frames_refused, 0u);
  // Only the few-byte Request fits a 16-byte MTU; Hello, sketch, and
  // summary are all refused, so the handshake stalls and no data-plane
  // traffic ever flows.
  EXPECT_EQ(totals.data_bytes, 0u);
}

TEST(DeliveryService, LinkTotalsAreCumulativeAcrossRefreshes) {
  const auto content = random_content(64 * 150, 7);
  auto options = small_options();
  options.refresh_interval = 10;  // force several session teardowns
  ContentDeliveryService service(content, options);
  service.add_peer("seed", true);
  const auto leaf = service.add_peer("leaf", false);

  ContentDeliveryService::LinkTotals previous;
  std::size_t refreshes_observed = 0;
  for (int t = 0; t < 600 && !service.peer_complete(leaf); ++t) {
    service.tick();
    const auto totals = service.link_totals();
    // Cumulative totals never decrease, even across a refresh teardown.
    EXPECT_GE(totals.control_bytes, previous.control_bytes);
    EXPECT_GE(totals.data_bytes, previous.data_bytes);
    EXPECT_GE(totals.control_frames, previous.control_frames);
    EXPECT_GE(totals.data_frames, previous.data_frames);
    if (service.active_link_totals().control_bytes < totals.control_bytes) {
      ++refreshes_observed;  // some cost now lives only in retired links
    }
    previous = totals;
  }
  EXPECT_GT(refreshes_observed, 0u);
  EXPECT_GT(previous.control_bytes, 0u);
  EXPECT_GT(previous.data_bytes, 0u);
}

TEST(DeliveryService, TicksAreCountedAndContentIsStable) {
  const auto content = random_content(64 * 50, 5);
  ContentDeliveryService service(content, small_options());
  const auto id = service.add_peer("a", true);
  EXPECT_EQ(service.ticks(), 0u);
  service.tick();
  EXPECT_EQ(service.ticks(), 1u);
  ASSERT_TRUE(service.run(2000));
  const auto first = service.peer_content(id);
  service.tick();  // extra ticks change nothing for completed peers
  EXPECT_EQ(service.peer_content(id), first);
}

}  // namespace
}  // namespace icd::core

// Tests for the ContentDeliveryService facade: full-fidelity end-to-end
// delivery with origin mirrors, admission-controlled peer sessions, and
// verification of reconstructed content.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/delivery.hpp"
#include "core/fault_plan.hpp"
#include "core/session_plan.hpp"
#include "util/random.hpp"

namespace icd::core {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

DeliveryOptions small_options() {
  DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 13;
  options.refresh_interval = 25;
  return options;
}

// --- Admission starvation relaxation ----------------------------------------

/// Builds a sketch over `count` ids starting at `first` (512 permutations:
/// tight resemblance estimates so the cutoff comparisons are stable).
sketch::MinwiseSketch make_sketch(std::uint64_t first, std::uint64_t count) {
  sketch::MinwiseSketch sketch(1u << 20, 512);
  for (std::uint64_t id = first; id < first + count; ++id) sketch.update(id);
  return sketch;
}

TEST(AdmissionRelaxation, NearCompletePeerAdmitsNovelNotIdenticalSenders) {
  // End-of-download regime: every candidate resembles the receiver above
  // the strict cutoff. The relaxed policy (tiny remaining need -> cutoff
  // relaxes toward 1) must admit the sender that still holds novel
  // symbols while continuing to reject the genuinely identical one —
  // which the old largest-candidate fallback would happily have picked.
  const auto receiver = make_sketch(0, 950);
  const auto identical = make_sketch(0, 950);     // same 950 ids
  const auto near_identical = make_sketch(0, 960);  // 950 shared + 10 novel

  AdmissionPolicy policy;  // max_resemblance 0.95
  std::vector<CandidateSender> candidates{
      CandidateSender{7, &identical, 950},
      CandidateSender{9, &near_identical, 960}};

  // Strict admission rejects both (estimated resemblance 1.0 and ~0.98).
  EXPECT_TRUE(
      select_senders(receiver, 950, candidates, policy, 2).empty());

  // Near complete: needed 50 of a 1000-symbol target.
  const AdmissionPolicy relaxed = relax_policy_for_need(policy, 50, 1000);
  EXPECT_GT(relaxed.max_resemblance, 0.99);
  EXPECT_LT(relaxed.max_resemblance, 1.0);  // identical stays out
  const auto selected = select_senders(receiver, 950, candidates, relaxed, 2);
  EXPECT_EQ(selected, (std::vector<std::size_t>{9}));
}

TEST(AdmissionRelaxation, FarFromDonePeerKeepsTheStrictCutoff) {
  // Early-download regime: the same near-identical candidate offers
  // nothing a peer that needs most of the content could not get from a
  // genuinely novel sender, and the barely-relaxed cutoff still rejects
  // it — no useless sessions are admitted.
  const auto receiver = make_sketch(0, 950);
  const auto near_identical = make_sketch(0, 960);
  AdmissionPolicy policy;
  std::vector<CandidateSender> candidates{
      CandidateSender{9, &near_identical, 960}};

  const AdmissionPolicy relaxed = relax_policy_for_need(policy, 900, 1000);
  EXPECT_LT(relaxed.max_resemblance, 0.96);
  EXPECT_TRUE(
      select_senders(receiver, 950, candidates, relaxed, 2).empty());
  // And the relaxation is monotone in the remaining need.
  EXPECT_LT(relax_policy_for_need(policy, 900, 1000).max_resemblance,
            relax_policy_for_need(policy, 400, 1000).max_resemblance);
  EXPECT_LT(relax_policy_for_need(policy, 400, 1000).max_resemblance,
            relax_policy_for_need(policy, 50, 1000).max_resemblance);
}

// --- Overlap-aware sender-group selection -----------------------------------

TEST(OverlapAwareSelection, DemotesOverlappingPairForComplementarySender) {
  // Three candidates, all equally novel against the receiver: two
  // near-identical to *each other* (190 of 200 ids shared), one disjoint
  // from both. Per-candidate novelty cannot tell the pair apart from the
  // complementary sender — only the group-overlap estimate can.
  const auto receiver = make_sketch(0, 100);
  const auto first = make_sketch(1000, 200);
  const auto twin = make_sketch(1010, 200);          // 190 ids shared
  const auto complementary = make_sketch(5000, 200);  // disjoint
  const std::vector<PlanPeer> peers{
      PlanPeer{&receiver, 100}, PlanPeer{&first, 200}, PlanPeer{&twin, 200},
      PlanPeer{&complementary, 200}};
  DeliveryOptions options = small_options();
  options.max_peer_sessions = 2;

  const auto sender_ids = [&](bool overlap_aware) {
    options.overlap_aware_selection = overlap_aware;
    std::uint64_t chain = 99;
    std::vector<std::size_t> ids;
    for (const auto& download :
         plan_peer_downloads(0, peers, options, 400, chain)) {
      ids.push_back(download.sender_id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  // Historical plan: novelty-ranked with input order on ties, so the two
  // overlapping senders win — and must keep winning with the flag off.
  EXPECT_EQ(sender_ids(false), (std::vector<std::size_t>{1, 2}));
  // Overlap-aware: the twins' mutual overlap demotes one of them in favor
  // of the complementary sender.
  const auto aware = sender_ids(true);
  ASSERT_EQ(aware.size(), 2u);
  EXPECT_TRUE(std::find(aware.begin(), aware.end(), 3u) != aware.end());
  EXPECT_FALSE(std::find(aware.begin(), aware.end(), 1u) != aware.end() &&
               std::find(aware.begin(), aware.end(), 2u) != aware.end());
}

TEST(DeliveryService, SingleSubscriberDecodesFromOrigin) {
  const auto content = random_content(64 * 200, 1);
  ContentDeliveryService service(content, small_options());
  const auto id = service.add_peer("solo", /*subscribe_origin=*/true);
  ASSERT_TRUE(service.run(2000));
  EXPECT_TRUE(service.peer_complete(id));
  EXPECT_EQ(service.peer_content(id), content);
}

TEST(DeliveryService, NonSubscribersFedByPeers) {
  // Two origin-fed peers, three peers reachable only via the overlay: the
  // informed peer sessions must carry the content the rest of the way.
  const auto content = random_content(64 * 150, 2);
  ContentDeliveryService service(content, small_options());
  std::vector<std::size_t> ids;
  ids.push_back(service.add_peer("seed-a", true));
  ids.push_back(service.add_peer("seed-b", true));
  ids.push_back(service.add_peer("leaf-1", false));
  ids.push_back(service.add_peer("leaf-2", false));
  ids.push_back(service.add_peer("leaf-3", false));
  ASSERT_TRUE(service.run(6000));
  for (const auto id : ids) {
    EXPECT_TRUE(service.peer_complete(id));
    EXPECT_EQ(service.peer_content(id), content);
  }
}

TEST(DeliveryService, MirrorsSpeedUpSubscribers) {
  const auto content = random_content(64 * 200, 3);

  ContentDeliveryService one(content, small_options());
  one.add_peer("a", true);
  ASSERT_TRUE(one.run(4000));
  const auto single_ticks = one.ticks();

  ContentDeliveryService two(content, small_options());
  two.add_mirror();
  // Peers round-robin across origins; a pair of subscribers shares the
  // load and both still finish.
  two.add_peer("a", true);
  two.add_peer("b", true);
  ASSERT_TRUE(two.run(4000));
  // The mirrored service serves double the peers in comparable time.
  EXPECT_LE(two.ticks(), single_ticks * 2);
}

TEST(DeliveryService, CompletedPeersServeLateJoiners) {
  const auto content = random_content(64 * 120, 4);
  auto options = small_options();
  ContentDeliveryService service(content, options);
  const auto seeder = service.add_peer("seeder", true);
  ASSERT_TRUE(service.run(3000));
  ASSERT_TRUE(service.peer_complete(seeder));

  // Late joiner with no origin subscription: it can only get content from
  // the completed seeder, which serves re-encoded fresh symbols.
  const auto late = service.add_peer("late", false);
  ASSERT_TRUE(service.run(5000));
  EXPECT_TRUE(service.peer_complete(late));
  EXPECT_EQ(service.peer_content(late), content);
}

TEST(DeliveryService, ShortRefreshIntervalDoesNotStarveNearCompletePeers) {
  // Regression: with short sessions a nearly-complete peer's sketch
  // resembles every candidate above the admission cutoff, and without the
  // starvation fallback refresh_sessions stops creating downloads — the
  // peer stalls a few symbols short of decoding, forever.
  const auto content = random_content(64 * 150, 9);
  auto options = small_options();
  options.refresh_interval = 10;
  options.link.loss_rate = 0.1;  // over lossy edges, too
  ContentDeliveryService service(content, options);
  service.add_peer("seed", true);
  const auto leaf = service.add_peer("leaf", false);
  ASSERT_TRUE(service.run(6000));
  EXPECT_EQ(service.peer_content(leaf), content);
}

TEST(DeliveryService, TinyLinkMtuIsDiagnosableNotSilent) {
  // An MTU below the fragment overhead means no frame can ever cross the
  // peer links; the service must stall visibly (frames_refused) instead
  // of reporting an idle wire.
  const auto content = random_content(64 * 50, 11);
  auto options = small_options();
  options.link.mtu = 16;
  ContentDeliveryService service(content, options);
  service.add_peer("seed", true);
  const auto leaf = service.add_peer("leaf", false);
  EXPECT_FALSE(service.run(100));
  EXPECT_FALSE(service.peer_complete(leaf));
  const auto totals = service.link_totals();
  EXPECT_GT(totals.frames_refused, 0u);
  // Only the few-byte Request fits a 16-byte MTU; Hello, sketch, and
  // summary are all refused, so the handshake stalls and no data-plane
  // traffic ever flows.
  EXPECT_EQ(totals.data_bytes, 0u);
}

TEST(DeliveryService, LinkTotalsAreCumulativeAcrossRefreshes) {
  const auto content = random_content(64 * 150, 7);
  auto options = small_options();
  options.refresh_interval = 10;  // force several session teardowns
  ContentDeliveryService service(content, options);
  service.add_peer("seed", true);
  const auto leaf = service.add_peer("leaf", false);

  ContentDeliveryService::LinkTotals previous;
  std::size_t refreshes_observed = 0;
  for (int t = 0; t < 600 && !service.peer_complete(leaf); ++t) {
    service.tick();
    const auto totals = service.link_totals();
    // Cumulative totals never decrease, even across a refresh teardown.
    EXPECT_GE(totals.control_bytes, previous.control_bytes);
    EXPECT_GE(totals.data_bytes, previous.data_bytes);
    EXPECT_GE(totals.control_frames, previous.control_frames);
    EXPECT_GE(totals.data_frames, previous.data_frames);
    if (service.active_link_totals().control_bytes < totals.control_bytes) {
      ++refreshes_observed;  // some cost now lives only in retired links
    }
    previous = totals;
  }
  EXPECT_GT(refreshes_observed, 0u);
  EXPECT_GT(previous.control_bytes, 0u);
  EXPECT_GT(previous.data_bytes, 0u);
}

TEST(DeliveryService, SuspectOnlyNovelSenderIsReadmittedAfterTtlExpiry) {
  // relax_policy_for_need x suspect set: peer 1's only novel source is
  // peer 0, which crashes mid-transfer (flagged by the liveness timeout,
  // marked suspect) and restarts while still inside its suspect TTL. The
  // starving receiver's admission cutoff relaxes toward 1 as refreshes
  // pass — but relaxation widens the *policy*, never the candidate pool:
  // a suspect stays excluded until the TTL expires, and only then does
  // the (relaxed) admission re-form the session and finish the download.
  auto plan = std::make_shared<FaultPlan>();
  plan->crashes.push_back({30, 0});
  plan->restarts.push_back({55, 0});
  DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 51;
  options.refresh_interval = 25;
  options.faults = plan;
  options.liveness_timeout_ticks = 12;
  options.max_handshake_retries = 4;
  options.suspect_ttl_ticks = 60;
  const auto content = random_content(64 * 60, 77);
  ContentDeliveryService service(content, options);
  service.add_peer("source", true);
  service.add_peer("leaf", false);

  // Restarted and alive — but still suspect, so refreshes (with ever more
  // relaxed cutoffs: the leaf is starving) must not re-admit peer 0.
  for (std::size_t t = 0; t < 90; ++t) service.tick();
  EXPECT_FALSE(service.peer_down(0));
  EXPECT_FALSE(service.peer_complete(1));

  ASSERT_TRUE(service.run(8000));
  EXPECT_TRUE(service.peer_complete(1));
  EXPECT_EQ(service.peer_content(1), content);

  // The abandoned session was diagnosed, and completion waited out the
  // suspect window (failure tick + TTL) rather than racing the restart.
  const auto result = service.session_result(1);
  ASSERT_FALSE(result.failed_peers.empty());
  EXPECT_EQ(result.failed_peers.front().peer, 0u);
  EXPECT_EQ(result.failed_peers.front().reason,
            FailedPeer::Reason::kLivenessTimeout);
  EXPECT_GE(service.peer_completion_tick(1),
            result.failed_peers.front().tick + options.suspect_ttl_ticks);
}

TEST(DeliveryService, TicksAreCountedAndContentIsStable) {
  const auto content = random_content(64 * 50, 5);
  ContentDeliveryService service(content, small_options());
  const auto id = service.add_peer("a", true);
  EXPECT_EQ(service.ticks(), 0u);
  service.tick();
  EXPECT_EQ(service.ticks(), 1u);
  ASSERT_TRUE(service.run(2000));
  const auto first = service.peer_content(id);
  service.tick();  // extra ticks change nothing for completed peers
  EXPECT_EQ(service.peer_content(id), first);
}

}  // namespace
}  // namespace icd::core

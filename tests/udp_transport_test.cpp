// Tests for the real-network backend: wire::Transport over non-blocking
// UDP on loopback. The load-bearing property is byte equivalence — a
// UdpTransport must put exactly the frames on the wire that an in-process
// Pipe does for the same script — plus the substrate concerns the Pipe
// never faces: truncated and garbage datagrams off the network, and the
// pooled receive path reaching a steady state without allocation.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "art/art_summary.hpp"
#include "art/reconciliation_tree.hpp"
#include "core/swarm.hpp"
#include "wire/transport.hpp"
#include "wire/udp.hpp"

namespace icd::wire {
namespace {

/// Bind two sockets first, then cross-connect — the straightforward way to
/// stand up a loopback pair when both ends live in one process. Transports
/// are heap-held: a Transport is pinned once constructed (it hands out
/// views into its own receive buffer).
std::pair<std::unique_ptr<UdpTransport>, std::unique_ptr<UdpTransport>>
make_loopback_pair(std::size_t mtu) {
  UdpSocket sa = UdpSocket::bind("127.0.0.1", 0);
  UdpSocket sb = UdpSocket::bind("127.0.0.1", 0);
  const std::uint16_t pa = sa.local_port();
  const std::uint16_t pb = sb.local_port();
  sa.connect("127.0.0.1", pb);
  sb.connect("127.0.0.1", pa);
  return {std::make_unique<UdpTransport>(std::move(sa), mtu),
          std::make_unique<UdpTransport>(std::move(sb), mtu)};
}

/// Loopback delivery is effectively synchronous, but give the kernel a few
/// retries before declaring a datagram lost.
std::optional<Message> receive_within(Transport& transport,
                                      int attempts = 2000) {
  for (int i = 0; i < attempts; ++i) {
    if (auto message = transport.receive()) return message;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return std::nullopt;
}

/// Every wire frame type that user code sends whole (Fragment is produced
/// only by the transport itself during fragmentation).
std::vector<Message> sample_messages() {
  std::vector<Message> messages;
  messages.emplace_back(Hello{1234, 0xdeadbeefULL, 567});
  messages.emplace_back(Request{987654});
  messages.emplace_back(RequestUpdate{12});
  EncodedSymbolMessage encoded;
  encoded.symbol.id = 42;
  encoded.symbol.payload = {1, 2, 3, 4, 5, 6, 7};
  messages.emplace_back(encoded);
  RecodedSymbolMessage recoded;
  recoded.symbol.constituents = {10, 20, 30, 40};
  recoded.symbol.payload = {9, 8, 7};
  messages.emplace_back(recoded);
  sketch::MinwiseSketch sketch(1 << 20, 16);
  sketch.update_all({1, 2, 3, 99});
  messages.emplace_back(SketchMessage{sketch});
  auto filter = filter::BloomFilter::with_bits_per_element(64, 8.0);
  for (std::uint64_t i = 0; i < 64; ++i) filter.insert(i * 7);
  messages.emplace_back(BloomSummaryMessage{filter});
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 100; ++i) keys.push_back(i * 1337);
  messages.emplace_back(ArtSummaryMessage{
      art::ArtSummary::build(art::ReconciliationTree(keys), 4.0, 4.0)});
  return messages;
}

TEST(UdpTransport, RoundTripsEveryFrameType) {
  auto [pa, pb] = make_loopback_pair(1400);
  UdpTransport &a = *pa, &b = *pb;
  for (const Message& message : sample_messages()) {
    ASSERT_TRUE(a.send(message));
    const auto received = receive_within(b);
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(message_type(*received), message_type(message));
    if (const auto* hello = std::get_if<Hello>(&message)) {
      EXPECT_EQ(std::get<Hello>(*received), *hello);
    }
    if (const auto* request = std::get_if<Request>(&message)) {
      EXPECT_EQ(std::get<Request>(*received), *request);
    }
    if (const auto* symbol = std::get_if<EncodedSymbolMessage>(&message)) {
      EXPECT_EQ(std::get<EncodedSymbolMessage>(*received), *symbol);
    }
    if (const auto* symbol = std::get_if<RecodedSymbolMessage>(&message)) {
      EXPECT_EQ(std::get<RecodedSymbolMessage>(*received), *symbol);
    }
    if (const auto* sketch = std::get_if<SketchMessage>(&message)) {
      EXPECT_EQ(std::get<SketchMessage>(*received).sketch.minima(),
                sketch->sketch.minima());
    }
  }
  EXPECT_EQ(a.stats().messages_sent, sample_messages().size());
  EXPECT_EQ(b.stats().messages_received, sample_messages().size());
  EXPECT_EQ(b.stats().malformed_frames, 0u);
  EXPECT_EQ(b.udp_stats().truncated_datagrams, 0u);
}

TEST(UdpTransport, TinyMtuFragmentsAndReassembles) {
  // 96-byte MTU: the Bloom and ART summaries must travel as multi-fragment
  // trains and come out whole on the far side.
  auto [pa, pb] = make_loopback_pair(96);
  UdpTransport &a = *pa, &b = *pb;
  auto filter = filter::BloomFilter::with_bits_per_element(256, 8.0);
  for (std::uint64_t i = 0; i < 256; ++i) filter.insert(i * 31);
  ASSERT_TRUE(a.send(BloomSummaryMessage{filter}));
  EXPECT_GT(a.stats().frames_sent, 1u);  // really fragmented
  const auto received = receive_within(b);
  ASSERT_TRUE(received.has_value());
  ASSERT_TRUE(std::holds_alternative<BloomSummaryMessage>(*received));
  const auto& restored = std::get<BloomSummaryMessage>(*received).filter;
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_TRUE(restored.contains(i * 31));
  }
  EXPECT_EQ(b.stats().messages_received, 1u);
  EXPECT_EQ(b.stats().stale_fragments, 0u);
}

TEST(UdpTransport, RejectsGarbageAndTruncatedDatagrams) {
  auto [pa, pb] = make_loopback_pair(256);
  UdpTransport &a = *pa, &b = *pb;
  // Inject raw bytes through a's own fd: b's connected socket filters
  // inbound datagrams by source, so the hostile bytes must come from the
  // peer b actually talks to.

  // Pure garbage: wrong magic.
  const std::vector<std::uint8_t> garbage(32, 0xff);
  ASSERT_GT(::send(a.fd(), garbage.data(), garbage.size(), 0), 0);
  // A truncated real frame: valid magic, payload cut short.
  const auto frame = encode_frame(Hello{7, 8, 9});
  ASSERT_GT(::send(a.fd(), frame.data(), 5, 0), 0);
  // An over-MTU datagram: dropped before decode, counted as truncated.
  const std::vector<std::uint8_t> oversized(256 + 64, 0xab);
  ASSERT_GT(::send(a.fd(), oversized.data(), oversized.size(), 0), 0);

  // Give loopback a moment, then drain: nothing decodes, nothing crashes.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int i = 0; i < 10; ++i) {
    b.drain();
    EXPECT_FALSE(b.receive().has_value());
  }
  EXPECT_EQ(b.stats().messages_received, 0u);
  EXPECT_EQ(b.stats().malformed_frames, 2u);
  EXPECT_EQ(b.udp_stats().truncated_datagrams, 1u);

  // The link still works afterwards.
  ASSERT_TRUE(a.send(Request{5}));
  const auto received = receive_within(b);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(std::get<Request>(*received), Request{5});
}

TEST(UdpTransport, PooledReceivePathReachesSteadyState) {
  auto [pa, pb] = make_loopback_pair(1400);
  UdpTransport &a = *pa, &b = *pb;
  // Warm-up: the first sends and drains populate both private pools.
  for (int round = 0; round < 300; ++round) {
    ASSERT_TRUE(a.send(Request{static_cast<std::uint64_t>(round)}));
    ASSERT_TRUE(receive_within(b).has_value());
  }
  // Steady state: buffers cycle send -> pool and drain -> deliver -> pool,
  // so the hit rate approaches 1 and stays there.
  EXPECT_GT(a.pool().stats().hit_rate(), 0.8);
  EXPECT_GT(b.pool().stats().hit_rate(), 0.8);
  EXPECT_EQ(b.stats().messages_received, 300u);
}

TEST(UdpTransport, EagainBacklogQueuesThenPumpDrainsInOrder) {
  auto [pa, pb] = make_loopback_pair(1400);
  UdpTransport &a = *pa, &b = *pb;
  // Arm the EAGAIN seam: every transmit attempt reports a full kernel
  // queue, so sends must defer into the tx backlog instead of failing.
  a.debug_force_eagain(1000);
  constexpr std::uint64_t kFrames = 50;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(a.send(Request{i}));  // handed to the link, not refused
  }
  EXPECT_EQ(a.udp_stats().datagrams_sent, 0u);
  EXPECT_GE(a.udp_stats().deferred_sends, kFrames);
  EXPECT_EQ(a.udp_stats().backlog_dropped, 0u);  // backlog far from its cap
  EXPECT_FALSE(a.pump());  // still armed: nothing can depart

  // Nothing arrived while the seam was armed.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  b.drain();
  EXPECT_FALSE(b.receive().has_value());

  // Recovery: the kernel "unclogs" and one pump flushes the whole backlog
  // in original send order.
  a.debug_force_eagain(0);
  EXPECT_TRUE(a.pump());
  EXPECT_EQ(a.udp_stats().datagrams_sent, kFrames);
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    const auto received = receive_within(b);
    ASSERT_TRUE(received.has_value()) << "frame " << i;
    EXPECT_EQ(std::get<Request>(*received), Request{i});
  }
}

TEST(UdpTransport, SendAfterRecoveryKeepsOrderBehindBacklog) {
  auto [pa, pb] = make_loopback_pair(1400);
  UdpTransport &a = *pa, &b = *pb;
  a.debug_force_eagain(10);
  ASSERT_TRUE(a.send(Request{1}));
  ASSERT_TRUE(a.send(Request{2}));
  a.debug_force_eagain(0);
  // The next send must flush the queued frames first — frame order is
  // part of the transport contract even across an EAGAIN episode.
  ASSERT_TRUE(a.send(Request{3}));
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto received = receive_within(b);
    ASSERT_TRUE(received.has_value()) << "frame " << i;
    EXPECT_EQ(std::get<Request>(*received), Request{i});
  }
  EXPECT_EQ(a.udp_stats().backlog_dropped, 0u);
}

TEST(UdpTransport, BacklogCapDropsOldestAndKeepsNewest) {
  auto [pa, pb] = make_loopback_pair(1400);
  UdpTransport &a = *pa, &b = *pb;
  constexpr std::size_t kCap = 8;
  constexpr std::uint64_t kFrames = 20;
  a.set_max_backlog(kCap);
  EXPECT_EQ(a.max_backlog(), kCap);
  a.debug_force_eagain(1000);
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(a.send(Request{i}));  // accepted; overflow is link loss
  }
  // The queue is pinned at the cap — a stalled peer under shaped loss
  // cannot grow memory without bound — and every overflow evicted the
  // oldest datagram, counted as backlog_dropped.
  EXPECT_EQ(a.udp_stats().backlog_dropped, kFrames - kCap);
  EXPECT_EQ(a.udp_stats().datagrams_sent, 0u);

  // Recovery: exactly the newest kCap frames depart, still in order.
  a.debug_force_eagain(0);
  EXPECT_TRUE(a.pump());
  EXPECT_EQ(a.udp_stats().datagrams_sent, kCap);
  for (std::uint64_t i = kFrames - kCap; i < kFrames; ++i) {
    const auto received = receive_within(b);
    ASSERT_TRUE(received.has_value()) << "frame " << i;
    EXPECT_EQ(std::get<Request>(*received), Request{i});
  }
  EXPECT_FALSE(b.receive().has_value());
}

TEST(UdpTransport, ZeroBacklogCapClampsToOne) {
  auto [pa, pb] = make_loopback_pair(1400);
  (void)pb;
  pa->set_max_backlog(0);
  EXPECT_EQ(pa->max_backlog(), 1u);
}

TEST(UdpTransport, DelayShapingHoldsDatagramsForTheConfiguredTime) {
  auto [pa, pb] = make_loopback_pair(1400);
  UdpTransport &a = *pa, &b = *pb;
  b.set_delay_shaping(20000, 5000, 99);  // 20-25ms in-flight

  ASSERT_TRUE(a.send(Request{7}));
  // The datagram lands in the socket almost immediately, but shaping must
  // hold it back: poll for a generous fraction of the delay and see
  // nothing surface.
  const auto start = std::chrono::steady_clock::now();
  bool early = false;
  while (std::chrono::steady_clock::now() - start <
         std::chrono::milliseconds(10)) {
    if (b.receive().has_value()) {
      early = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(early) << "shaped datagram surfaced before its delay";
  EXPECT_GE(b.udp_stats().delayed_datagrams, 1u);

  // After the full delay (plus slack) it must be deliverable.
  const auto received = receive_within(b, 5000);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(std::get<Request>(*received), Request{7});
}

TEST(UdpTransport, SurvivesInterleavedGarbageBursts) {
  // Bursts of hostile datagrams (wrong magic, truncated frames) arriving
  // between valid ones: every valid frame still decodes, every hostile one
  // is counted and discarded, and the session never wedges.
  auto [pa, pb] = make_loopback_pair(256);
  UdpTransport &a = *pa, &b = *pb;
  const std::vector<std::uint8_t> garbage(32, 0xff);
  const auto truncated = encode_frame(Hello{7, 8, 9});
  constexpr std::uint64_t kRounds = 20;
  for (std::uint64_t i = 0; i < kRounds; ++i) {
    ASSERT_GT(::send(a.fd(), garbage.data(), garbage.size(), 0), 0);
    ASSERT_GT(::send(a.fd(), truncated.data(), 5, 0), 0);
    ASSERT_TRUE(a.send(Request{i}));
    const auto received = receive_within(b);
    ASSERT_TRUE(received.has_value()) << "round " << i;
    EXPECT_EQ(std::get<Request>(*received), Request{i});
  }
  EXPECT_EQ(b.stats().messages_received, kRounds);
  EXPECT_EQ(b.stats().malformed_frames, 2 * kRounds);
  EXPECT_EQ(b.udp_stats().truncated_datagrams, 0u);
}

TEST(UdpTransport, LossInjectionDropsDeterministicallyAtTheSocket) {
  const auto run = [](std::uint64_t seed) {
    auto [pa, pb] = make_loopback_pair(1400);
    UdpTransport &a = *pa, &b = *pb;
    b.set_loss_injection(0.5, seed);
    constexpr std::size_t kFrames = 200;
    for (std::size_t i = 0; i < kFrames; ++i) {
      EXPECT_TRUE(a.send(Request{i}));
      // Drain as we go so the kernel socket buffer never overflows —
      // every datagram must reach the injection point.
      for (int spin = 0; spin < 2000; ++spin) {
        b.drain();
        if (b.udp_stats().datagrams_received + b.udp_stats().injected_drops >
            i) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    const auto& stats = b.udp_stats();
    EXPECT_EQ(stats.datagrams_received + stats.injected_drops, kFrames);
    EXPECT_GT(stats.injected_drops, 0u);
    EXPECT_GT(stats.datagrams_received, 0u);
    return stats.injected_drops;
  };
  // Same seed, same traffic -> the same drop pattern: the injection is a
  // deterministic function of the seed, not of wall-clock racing.
  const std::size_t first = run(0xfee1);
  const std::size_t second = run(0xfee1);
  EXPECT_EQ(first, second);
}

/// The same control + data script over a given transport pair; returns the
/// sender-side stats. Mirrors a handshake bundle (batched control train),
/// a data-plane burst, and one oversized fragmented summary.
TransportStats run_script(Transport& tx, Transport& rx) {
  tx.set_batch_budget(512);
  EXPECT_TRUE(tx.send(Hello{100, 77, 60}));
  sketch::MinwiseSketch sketch(1 << 20, 32);
  for (std::uint64_t i = 0; i < 60; ++i) sketch.update(i * 13);
  EXPECT_TRUE(tx.send(SketchMessage{sketch}));
  EXPECT_TRUE(tx.send(Request{40}));
  EXPECT_TRUE(tx.flush_batch());
  for (std::uint64_t i = 0; i < 25; ++i) {
    EncodedSymbolMessage symbol;
    symbol.symbol.id = i;
    symbol.symbol.payload.assign(64, static_cast<std::uint8_t>(i));
    EXPECT_TRUE(tx.send(symbol));
  }
  auto filter = filter::BloomFilter::with_bits_per_element(2048, 8.0);
  for (std::uint64_t i = 0; i < 2048; ++i) filter.insert(i);
  EXPECT_TRUE(tx.send(BloomSummaryMessage{filter}));  // > MTU: fragments
  std::size_t delivered = 0;
  while (delivered < 29) {
    const auto message = receive_within(rx);
    if (!message) break;
    ++delivered;
  }
  EXPECT_EQ(delivered, 29u);
  return tx.stats();
}

TEST(UdpTransport, ByteAccountingMatchesPipeExactly) {
  // The equivalence the swarm harness rests on: same script, same MTU,
  // same batch budget -> identical sent-side accounting over real UDP and
  // over the in-process Pipe, field by field.
  auto [pa, pb] = make_loopback_pair(1400);
  UdpTransport &a = *pa, &b = *pb;
  const TransportStats udp = run_script(a, b);
  Pipe pipe(1400);
  const TransportStats piped = run_script(pipe.a(), pipe.b());

  EXPECT_EQ(udp.frames_sent, piped.frames_sent);
  EXPECT_EQ(udp.control_frames_sent, piped.control_frames_sent);
  EXPECT_EQ(udp.data_frames_sent, piped.data_frames_sent);
  EXPECT_EQ(udp.bytes_sent, piped.bytes_sent);
  EXPECT_EQ(udp.control_bytes_sent, piped.control_bytes_sent);
  EXPECT_EQ(udp.data_bytes_sent, piped.data_bytes_sent);
  EXPECT_EQ(udp.messages_sent, piped.messages_sent);
  EXPECT_EQ(udp.frames_refused, 0u);
}

// --- SwarmSpec access-class shaping -----------------------------------------

TEST(SwarmSpecShaping, ProfilesAndAccessRoundTripThroughSerialize) {
  core::SwarmSpec spec;
  spec.nodes = 4;
  spec.link_profiles.push_back({"fiber", 0.0, 500, 0});
  spec.link_profiles.push_back({"dsl", 0.02, 8000, 2000});
  spec.access[1] = 1;
  spec.access_default = 0;
  spec.build_full_mesh(45000);

  const core::SwarmSpec parsed = core::SwarmSpec::parse_text(spec.serialize());
  ASSERT_EQ(parsed.link_profiles.size(), 2u);
  EXPECT_EQ(parsed.link_profiles[1].name, "dsl");
  EXPECT_DOUBLE_EQ(parsed.link_profiles[1].loss, 0.02);
  EXPECT_EQ(parsed.link_profiles[1].delay_us, 8000u);
  EXPECT_EQ(parsed.link_profiles[1].jitter_us, 2000u);
  ASSERT_NE(parsed.node_profile(1), nullptr);
  EXPECT_EQ(parsed.node_profile(1)->name, "dsl");
  ASSERT_NE(parsed.node_profile(0), nullptr);
  EXPECT_EQ(parsed.node_profile(0)->name, "fiber");  // via the default
  EXPECT_TRUE(parsed.shaped());

  // Without assignments the profiles are inert: byte exactness stays on.
  core::SwarmSpec inert;
  inert.nodes = 2;
  inert.link_profiles.push_back({"dsl", 0.02, 8000, 2000});
  EXPECT_FALSE(inert.shaped());
  EXPECT_EQ(inert.node_profile(0), nullptr);
}

TEST(SwarmSpecShaping, ParserRejectsBadProfilesAndAccess) {
  EXPECT_THROW(core::SwarmSpec::parse_text(
                   "nodes 2\nlink_profile p 1.5 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(core::SwarmSpec::parse_text(
                   "nodes 2\nlink_profile p 0.1 0 0\nlink_profile p 0.2 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(core::SwarmSpec::parse_text("nodes 2\naccess 0 ghost\n"),
               std::runtime_error);
  EXPECT_THROW(core::SwarmSpec::parse_text(
                   "nodes 2\nlink_profile p 0.1 0 0\naccess 7 p\n"),
               std::runtime_error);
  EXPECT_THROW(core::SwarmSpec::parse_text(
                   "nodes 2\nlink_profile p 0.1 0 0\naccess x p\n"),
               std::runtime_error);
}

TEST(SwarmSpecShaping, ShapedPredictionCompletesDeterministically) {
  core::SwarmSpec spec;
  spec.nodes = 3;
  spec.n = 60;
  spec.request_overhead = 4.0;
  spec.handshake_retry_ticks = 50;
  spec.max_ticks = 20000;
  spec.link_profiles.push_back({"lossy", 0.05, 3000, 1000});
  spec.access_default = 0;
  spec.build_full_mesh(0);  // ports unused by the predictor
  ASSERT_TRUE(spec.shaped());

  const core::SwarmPrediction first = core::predict_swarm(spec);
  const core::SwarmPrediction second = core::predict_swarm(spec);
  EXPECT_TRUE(first.all_completed);
  EXPECT_GT(first.ticks, 0u);
  // Deterministic per spec: the shaped band centers CI gates against must
  // not wobble between harness invocations.
  EXPECT_EQ(first.ticks, second.ticks);
  EXPECT_EQ(first.handshake_retries, second.handshake_retries);
  ASSERT_EQ(first.edges.size(), second.edges.size());
  for (std::size_t e = 0; e < first.edges.size(); ++e) {
    EXPECT_EQ(first.edges[e], second.edges[e]) << "edge " << e;
  }
  // And the shaping is real: a clean run of the same spec finishes faster.
  core::SwarmSpec clean = spec;
  clean.access_default.reset();
  EXPECT_FALSE(clean.shaped());
  const core::SwarmPrediction unshaped = core::predict_swarm(clean);
  EXPECT_TRUE(unshaped.all_completed);
  EXPECT_LT(unshaped.ticks, first.ticks);
  EXPECT_EQ(unshaped.handshake_retries, 0u);
}

}  // namespace
}  // namespace icd::wire

// Tests for icd::codec: degree distributions, block source, encoder,
// peeling decoder, recoder — the digital-fountain substrate of Sections 2.3
// and 5.4.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "codec/block_source.hpp"
#include "codec/decoder.hpp"
#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/inactivation.hpp"
#include "codec/peeling.hpp"
#include "codec/recoder.hpp"
#include "util/random.hpp"

namespace icd::codec {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

TEST(DegreeDistribution, IdealSolitonSumsToOne) {
  const auto dist = DegreeDistribution::ideal_soliton(100);
  double total = 0;
  for (std::size_t d = 1; d <= 100; ++d) total += dist.pmf(d);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DegreeDistribution, IdealSolitonShape) {
  const auto dist = DegreeDistribution::ideal_soliton(100);
  EXPECT_NEAR(dist.pmf(1), 0.01, 1e-9);
  EXPECT_NEAR(dist.pmf(2), 0.5, 1e-9);
  EXPECT_NEAR(dist.pmf(3), 1.0 / 6, 1e-9);
}

TEST(DegreeDistribution, RobustSolitonBoostsLowAndSpikeDegrees) {
  const auto ideal = DegreeDistribution::ideal_soliton(1000);
  const auto robust = DegreeDistribution::robust_soliton(1000);
  // The robust distribution moves mass toward degree 1 (and the spike).
  EXPECT_GT(robust.pmf(1), ideal.pmf(1));
}

TEST(DegreeDistribution, MeanMatchesSampleMean) {
  const auto dist = DegreeDistribution::robust_soliton(5000);
  util::Xoshiro256 rng(1);
  double total = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    total += static_cast<double>(dist.sample(rng));
  }
  EXPECT_NEAR(total / kDraws, dist.mean(), dist.mean() * 0.05);
}

TEST(DegreeDistribution, PaperScaleMeanDegree) {
  // Section 6.1: "The degree distribution used had an average degree of 11
  // for the encoded symbols" at 23,968 source blocks. Robust soliton at
  // that scale lands in the same regime.
  const auto dist = DegreeDistribution::robust_soliton(23968);
  EXPECT_GT(dist.mean(), 7.0);
  EXPECT_LT(dist.mean(), 16.0);
}

TEST(DegreeDistribution, TruncationCapsAndRenormalizes) {
  const auto dist = DegreeDistribution::robust_soliton(1000).truncated(50);
  EXPECT_EQ(dist.max_degree(), 50u);
  double total = 0;
  for (std::size_t d = 1; d <= 50; ++d) total += dist.pmf(d);
  EXPECT_NEAR(total, 1.0, 1e-9);
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(dist.sample(rng), 50u);
}

TEST(DegreeDistribution, ConstantDistribution) {
  const auto dist = DegreeDistribution::constant(7);
  EXPECT_DOUBLE_EQ(dist.mean(), 7.0);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 7u);
}

TEST(DegreeDistribution, RejectsBadInput) {
  EXPECT_THROW(DegreeDistribution({}), std::invalid_argument);
  EXPECT_THROW(DegreeDistribution({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DegreeDistribution({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(DegreeDistribution::ideal_soliton(0), std::invalid_argument);
  EXPECT_THROW(DegreeDistribution::constant(0), std::invalid_argument);
}

TEST(BlockSource, SplitsAndPads) {
  const auto content = random_content(1000, 4);
  const BlockSource source(content, 64);
  EXPECT_EQ(source.block_count(), 16u);  // ceil(1000/64)
  EXPECT_EQ(source.block(0).size(), 64u);
  // Final block zero-padded.
  const auto& last = source.block(15);
  for (std::size_t i = 1000 - 15 * 64; i < 64; ++i) EXPECT_EQ(last[i], 0);
}

TEST(BlockSource, RestoreRoundTrips) {
  const auto content = random_content(777, 5);
  const BlockSource source(content, 64);
  EXPECT_EQ(BlockSource::restore(source.blocks(), content.size()), content);
}

TEST(BlockSource, EmptyContentYieldsOneBlock) {
  const BlockSource source(std::vector<std::uint8_t>{}, 16);
  EXPECT_EQ(source.block_count(), 1u);
}

TEST(BlockSource, ZeroBlockSizeThrows) {
  EXPECT_THROW(BlockSource(std::vector<std::uint8_t>{1}, 0),
               std::invalid_argument);
}

TEST(XorInto, Semantics) {
  std::vector<std::uint8_t> a{1, 2, 3};
  xor_into(a, std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_EQ(a, (std::vector<std::uint8_t>{0, 0, 0}));
  std::vector<std::uint8_t> empty;
  xor_into(empty, std::vector<std::uint8_t>{7, 8});
  EXPECT_EQ(empty, (std::vector<std::uint8_t>{7, 8}));
  xor_into(empty, std::vector<std::uint8_t>{});
  EXPECT_EQ(empty, (std::vector<std::uint8_t>{7, 8}));
  std::vector<std::uint8_t> mismatched{1};
  EXPECT_THROW(xor_into(mismatched, std::vector<std::uint8_t>{1, 2}),
               std::invalid_argument);
}

TEST(Encoder, NeighborsAreDeterministicAndDistinct) {
  const auto content = random_content(64 * 100, 6);
  const BlockSource source(content, 64);
  const Encoder encoder(source, DegreeDistribution::robust_soliton(100), 42);
  for (std::uint64_t id = 0; id < 200; ++id) {
    const auto n1 = encoder.neighbors(id);
    const auto n2 = encoder.neighbors(id);
    EXPECT_EQ(n1, n2);
    const std::set<std::uint32_t> unique(n1.begin(), n1.end());
    EXPECT_EQ(unique.size(), n1.size());
    for (const auto b : n1) EXPECT_LT(b, 100u);
  }
}

TEST(Encoder, PayloadIsXorOfNeighbors) {
  const auto content = random_content(64 * 20, 7);
  const BlockSource source(content, 64);
  const Encoder encoder(source, DegreeDistribution::robust_soliton(20), 43);
  const auto symbol = encoder.encode(5);
  std::vector<std::uint8_t> expected;
  for (const auto b : encoder.neighbors(5)) {
    xor_into(expected, source.block(b));
  }
  EXPECT_EQ(symbol.payload, expected);
}

TEST(Encoder, StreamsWithDistinctSeedsAreDisjoint) {
  const auto content = random_content(64 * 20, 8);
  const BlockSource source(content, 64);
  const auto dist = DegreeDistribution::robust_soliton(20);
  Encoder a(source, dist, 43, /*stream_seed=*/1);
  Encoder b(source, dist, 43, /*stream_seed=*/2);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.insert(a.next().id);
    ids.insert(b.next().id);
  }
  EXPECT_EQ(ids.size(), 200u);
}

TEST(PeelingDecoder, DirectAndCascadedRecovery) {
  PeelingDecoder<int> peeler;
  // y1 = x1; y2 = x1 ^ x2; y3 = x2 ^ x3 — the paper's substitution example.
  EXPECT_TRUE(peeler.add_equation({1}, std::vector<std::uint8_t>{0x0f}));
  EXPECT_TRUE(
      peeler.add_equation({1, 2}, std::vector<std::uint8_t>{0x0f ^ 0x35}));
  EXPECT_TRUE(
      peeler.add_equation({2, 3}, std::vector<std::uint8_t>{0x35 ^ 0x77}));
  EXPECT_EQ(peeler.known_count(), 3u);
  EXPECT_EQ(peeler.value(1), (std::vector<std::uint8_t>{0x0f}));
  EXPECT_EQ(peeler.value(2), (std::vector<std::uint8_t>{0x35}));
  EXPECT_EQ(peeler.value(3), (std::vector<std::uint8_t>{0x77}));
}

TEST(PeelingDecoder, BufferedEquationResolvesLater) {
  PeelingDecoder<int> peeler;
  EXPECT_FALSE(peeler.add_equation(
      {1, 2}, std::vector<std::uint8_t>{0x03}));  // buffered
  EXPECT_EQ(peeler.buffered_count(), 1u);
  EXPECT_TRUE(peeler.mark_known(1, std::vector<std::uint8_t>{0x01}));
  EXPECT_EQ(peeler.buffered_count(), 0u);
  EXPECT_EQ(peeler.value(2), (std::vector<std::uint8_t>{0x02}));
}

TEST(PeelingDecoder, RedundantEquationsCounted) {
  PeelingDecoder<int> peeler;
  peeler.mark_known(1, std::vector<std::uint8_t>{0x01});
  peeler.mark_known(2, std::vector<std::uint8_t>{0x02});
  EXPECT_FALSE(peeler.add_equation({1, 2}, std::vector<std::uint8_t>{0x03}));
  EXPECT_EQ(peeler.redundant_count(), 1u);
}

TEST(PeelingDecoder, DuplicateKeysCancel) {
  PeelingDecoder<int> peeler;
  // x1 ^ x1 ^ x2 = x2.
  EXPECT_TRUE(peeler.add_equation({1, 1, 2}, std::vector<std::uint8_t>{0x09}));
  EXPECT_TRUE(peeler.is_known(2));
  EXPECT_FALSE(peeler.is_known(1));
  EXPECT_EQ(peeler.value(2), (std::vector<std::uint8_t>{0x09}));
}

TEST(PeelingDecoder, RecoveryLogOrdersAcquisitions) {
  PeelingDecoder<int> peeler;
  peeler.mark_known(5, std::vector<std::uint8_t>{});
  peeler.add_equation({5, 6}, std::vector<std::uint8_t>{});
  ASSERT_EQ(peeler.recovery_log().size(), 2u);
  EXPECT_EQ(peeler.recovery_log()[0], 5);
  EXPECT_EQ(peeler.recovery_log()[1], 6);
}

TEST(PeelingDecoder, ValueOfUnknownThrows) {
  PeelingDecoder<int> peeler;
  EXPECT_THROW(peeler.value(1), std::out_of_range);
}

TEST(InactivationDecoder, RankGapExitFoldsNothingBeforeEnoughSymbols) {
  const std::uint32_t blocks = 32;
  const auto dist = DegreeDistribution::constant(3);
  const auto content = random_content(blocks * 4, 11);
  const BlockSource source(content, 4);
  Encoder encoder(source, dist, 77);
  InactivationDecoder decoder(encoder.parameters(), dist);
  // Below block_count the rank gap is certain: try_solve must bail before
  // touching the elimination state (no rows folded, no reductions).
  for (std::uint32_t i = 0; i + 1 < blocks; ++i) {
    decoder.add_symbol(encoder.next());
    EXPECT_FALSE(decoder.try_solve());
  }
  EXPECT_EQ(decoder.stats().rows_folded, 0u);
  EXPECT_EQ(decoder.stats().row_reductions, 0u);
  EXPECT_EQ(decoder.stats().solve_calls, blocks - 1);
}

TEST(InactivationDecoder, IncrementalSolveCompletesWhenRankArrivesLate) {
  // Constant degree 3 never peels from cold, so every try_solve call runs
  // against a rank-deficient residual system until the very last arrival
  // closes the rank gap inside the *persistent* elimination state. A
  // second call with no new arrivals must be a pure no-op: same answer,
  // zero additional rows folded.
  const std::uint32_t blocks = 48;
  const auto dist = DegreeDistribution::constant(3);
  const auto content = random_content(blocks * 4, 5);
  const BlockSource source(content, 4);
  Encoder encoder(source, dist, 321);
  InactivationDecoder decoder(encoder.parameters(), dist);
  bool completed = false;
  while (!completed) {
    ASSERT_LT(decoder.received_count(), 4000u) << "did not converge";
    decoder.add_symbol(encoder.next());
    EXPECT_EQ(decoder.recovered_count(), 0u)
        << "degree-3 equations must not peel before the solve";
    const bool first = decoder.try_solve();
    const std::uint64_t folded = decoder.stats().rows_folded;
    const bool second = decoder.try_solve();
    EXPECT_EQ(first, second);
    EXPECT_EQ(decoder.stats().rows_folded, folded)
        << "idle try_solve re-folded equations";
    completed = second;
    if (!completed) EXPECT_FALSE(decoder.complete());
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_GT(decoder.received_count(), std::size_t{blocks})
      << "constant(3) at exactly l symbols full-rank would be miraculous";
  EXPECT_EQ(BlockSource::restore(decoder.blocks(), content.size()), content);
  EXPECT_GT(decoder.stats().rows_folded, 0u);
  EXPECT_GT(decoder.stats().row_reductions, 0u);
}

TEST(InactivationDecoder, SurvivesPeelingBetweenSolveAttempts) {
  // Robust soliton interleaves peeling recoveries with solve attempts:
  // stored elimination rows must be swept as blocks peel (pivot columns
  // re-pivoted or rows dropped) and stay consistent to completion.
  const std::uint32_t blocks = 200;
  const auto dist = DegreeDistribution::robust_soliton(blocks);
  const auto content = random_content(blocks * 8, 17);
  const BlockSource source(content, 8);
  Encoder encoder(source, dist, 999);
  InactivationDecoder decoder(encoder.parameters(), dist);
  while (!decoder.complete()) {
    ASSERT_LT(decoder.received_count(), 40ULL * blocks);
    decoder.add_symbol(encoder.next());
    if (decoder.received_count() >= blocks) decoder.try_solve();
  }
  EXPECT_EQ(BlockSource::restore(decoder.blocks(), content.size()), content);
}

class DecoderRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DecoderRoundTrip, RecoversExactContent) {
  const std::uint32_t blocks = GetParam();
  const std::size_t block_size = 32;
  const auto content = random_content(blocks * block_size - 13, 100 + blocks);
  const BlockSource source(content, block_size);
  const auto dist = DegreeDistribution::robust_soliton(source.block_count());
  Encoder encoder(source, dist, 1234);
  Decoder decoder(encoder.parameters(), dist);
  std::size_t received = 0;
  while (!decoder.complete()) {
    ASSERT_LT(received, 10u * blocks) << "decoder failed to converge";
    decoder.add_symbol(encoder.next());
    ++received;
  }
  EXPECT_EQ(BlockSource::restore(decoder.blocks(), content.size()), content);
  // Decoding overhead should be modest at meaningful block counts (robust
  // soliton: a few percent at large l; small l is dominated by variance).
  if (blocks >= 100) {
    EXPECT_LT(static_cast<double>(received) / blocks, 1.6);
  }
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, DecoderRoundTrip,
                         ::testing::Values(1, 2, 10, 100, 500, 2000));

TEST(Decoder, ToleratesLossAndReordering) {
  const std::size_t block_size = 16;
  const auto content = random_content(block_size * 300, 9);
  const BlockSource source(content, block_size);
  const auto dist = DegreeDistribution::robust_soliton(300);
  Encoder encoder(source, dist, 77);
  // Simulate 30% loss: drop symbols, decode from the survivors.
  util::Xoshiro256 rng(10);
  Decoder decoder(encoder.parameters(), dist);
  while (!decoder.complete()) {
    const auto symbol = encoder.next();
    if (rng.next_bool(0.30)) continue;  // lost
    decoder.add_symbol(symbol);
  }
  EXPECT_EQ(BlockSource::restore(decoder.blocks(), content.size()), content);
}

TEST(Decoder, MeasuredOverheadMatchesPaperBallpark) {
  // Section 6.1 reports 6.8% average overhead at l = 23,968. At l = 2,000
  // robust soliton costs somewhat more; assert the same order of magnitude.
  const double overhead = measure_decode_overhead(
      2000, 8, DegreeDistribution::robust_soliton(2000), 11);
  EXPECT_GT(overhead, 1.0);
  EXPECT_LT(overhead, 1.35);
}

TEST(Decoder, DegenerateDistributionFailsGracefully) {
  // All-degree-2 symbols can never start peeling.
  EXPECT_THROW(
      measure_decode_overhead(50, 8, DegreeDistribution::constant(2), 12),
      std::runtime_error);
}

TEST(RecodeDegree, OptimalDegreeGrowsWithCorrelation) {
  // d ~ 1/(1-c): one expected-unknown constituent.
  EXPECT_EQ(optimal_recode_degree(1000, 0.0), 1u);
  EXPECT_EQ(optimal_recode_degree(1000, 0.5), 2u);  // ceil(501/500) = 2
  EXPECT_GE(optimal_recode_degree(1000, 0.9), 10u);
  EXPECT_EQ(optimal_recode_degree(1000, 1.0), kDefaultRecodeDegreeLimit);
}

TEST(RecodeDegree, MonotoneInCorrelation) {
  std::size_t previous = 0;
  for (double c = 0.0; c < 0.99; c += 0.05) {
    const auto d = optimal_recode_degree(10000, c);
    EXPECT_GE(d, previous);
    previous = d;
  }
}

TEST(RecodeDegree, MinwiseScalingMatchesPaperRule) {
  // "generate a recoded symbol of degree floor(d / (1-c))".
  EXPECT_EQ(minwise_recode_degree(4, 0.0), 4u);
  EXPECT_EQ(minwise_recode_degree(4, 0.5), 8u);
  EXPECT_EQ(minwise_recode_degree(4, 0.75), 16u);
  EXPECT_EQ(minwise_recode_degree(4, 0.95), 50u);  // capped
  EXPECT_EQ(minwise_recode_degree(4, 1.0), 50u);
}

TEST(RecodeDegree, DrawRespectsLowerLimitAndCap) {
  const auto dist =
      DegreeDistribution::robust_soliton(1000).truncated(50);
  util::Xoshiro256 rng(13);
  for (int i = 0; i < 500; ++i) {
    const auto d = draw_recode_degree(dist, 1000, 0.9, rng);
    EXPECT_GE(d, optimal_recode_degree(1000, 0.9));
    EXPECT_LE(d, 50u);
  }
}

TEST(Recoder, GeneratesDistinctConstituentsWithXorPayload) {
  const auto content = random_content(64 * 50, 14);
  const BlockSource source(content, 64);
  const auto dist = DegreeDistribution::robust_soliton(50);
  Encoder encoder(source, dist, 99);
  std::vector<EncodedSymbol> held;
  for (int i = 0; i < 30; ++i) held.push_back(encoder.next());

  Recoder recoder(held);
  util::Xoshiro256 rng(15);
  const auto recoded = recoder.generate(5, rng);
  EXPECT_EQ(recoded.degree(), 5u);
  const std::set<std::uint64_t> unique(recoded.constituents.begin(),
                                       recoded.constituents.end());
  EXPECT_EQ(unique.size(), 5u);
  // Payload = XOR of the constituent payloads.
  std::vector<std::uint8_t> expected;
  for (const auto id : recoded.constituents) {
    for (const auto& s : held) {
      if (s.id == id) xor_into(expected, s.payload);
    }
  }
  EXPECT_EQ(recoded.payload, expected);
}

TEST(Recoder, DegreeClampedToDomain) {
  std::vector<EncodedSymbol> held{{1, {}}, {2, {}}, {3, {}}};
  Recoder recoder(held);
  util::Xoshiro256 rng(16);
  EXPECT_EQ(recoder.generate(50, rng).degree(), 3u);
  Recoder empty({});
  EXPECT_THROW(empty.generate(1, rng), std::logic_error);
}

TEST(RecodeDecoder, PaperSubstitutionExample) {
  // Section 5.4.2's worked example: z1 = y13, z2 = y5 ^ y8, z3 = y5 ^ y13.
  // "A peer that receives z1, z2 and z3 can immediately recover y13. Then
  // by substituting y13 into z3, the peer can recover y5, and similarly,
  // can recover y8 from z2."
  RecodeDecoder decoder;
  const std::vector<std::uint8_t> y5{0x05}, y8{0x08}, y13{0x0d};
  std::vector<std::uint8_t> z2 = y5;
  xor_into(z2, y8);
  std::vector<std::uint8_t> z3 = y5;
  xor_into(z3, y13);
  EXPECT_TRUE(decoder.add_recoded(RecodedSymbol{{13}, y13}));       // z1
  EXPECT_FALSE(decoder.add_recoded(RecodedSymbol{{5, 8}, z2}));     // z2 buffers
  EXPECT_TRUE(decoder.add_recoded(RecodedSymbol{{5, 13}, z3}));     // z3 cascades
  EXPECT_EQ(decoder.symbol_count(), 3u);
  EXPECT_EQ(decoder.payload(5), y5);
  EXPECT_EQ(decoder.payload(8), y8);
  EXPECT_EQ(decoder.payload(13), y13);
}

TEST(RecodeDecoder, EndToEndRecodedTransferDecodesFile) {
  // A partial sender holding 60% of the symbols recodes to a receiver
  // holding a different 60%; the receiver ends up able to decode the file.
  const std::size_t blocks = 200, block_size = 16;
  const auto content = random_content(blocks * block_size, 17);
  const BlockSource source(content, block_size);
  const auto dist = DegreeDistribution::robust_soliton(blocks);
  Encoder encoder(source, dist, 555);

  std::vector<EncodedSymbol> pool;
  for (std::size_t i = 0; i < blocks * 2; ++i) pool.push_back(encoder.next());

  // Receiver holds the first 40%, sender the remainder.
  RecodeDecoder receiver;
  Decoder block_decoder(encoder.parameters(), dist);
  std::size_t processed = 0;
  const std::size_t receiver_count = pool.size() * 2 / 5;
  for (std::size_t i = 0; i < receiver_count; ++i) {
    receiver.add_held_symbol(pool[i]);
  }
  std::vector<EncodedSymbol> sender_set(pool.begin() + receiver_count,
                                        pool.end());
  Recoder recoder(sender_set);

  const auto recode_dist =
      DegreeDistribution::robust_soliton(sender_set.size()).truncated(50);
  util::Xoshiro256 rng(18);
  std::size_t sent = 0;
  while (!block_decoder.complete() && sent < 20 * blocks) {
    receiver.add_recoded(recoder.generate(recode_dist.sample(rng), rng));
    ++sent;
    const auto& log = receiver.acquisition_log();
    while (processed < log.size() && !block_decoder.complete()) {
      const auto id = log[processed++];
      block_decoder.add_symbol(EncodedSymbol{id, receiver.payload(id)});
    }
  }
  ASSERT_TRUE(block_decoder.complete());
  EXPECT_EQ(BlockSource::restore(block_decoder.blocks(), content.size()),
            content);
}

}  // namespace
}  // namespace icd::codec

// Fault tolerance: the FaultPlan schedule and FaultTracker bookkeeping,
// Gilbert-Elliott burst loss, and the delivery engines' failure-recovery
// behavior — crash teardown with session resumption on restart, liveness
// timeouts and handshake-retry exhaustion surfacing in
// SessionResult::failed_peers, flash-crowd joins keeping run loops open,
// and the legacy-vs-sharded equality contract holding with faults enabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/delivery.hpp"
#include "core/fault_plan.hpp"
#include "core/sharded_delivery.hpp"
#include "util/random.hpp"
#include "wire/channel.hpp"

namespace icd {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

// --- FaultPlan queries ------------------------------------------------------

TEST(FaultPlan, CrashLastsUntilRestart) {
  core::FaultPlan plan;
  plan.crashes.push_back({10, 3});
  plan.restarts.push_back({40, 3});
  plan.crashes.push_back({70, 3});  // second crash, no restart

  EXPECT_FALSE(plan.crashed_at(3, 9));
  EXPECT_TRUE(plan.crashed_at(3, 10));
  EXPECT_TRUE(plan.crashed_at(3, 39));
  EXPECT_FALSE(plan.crashed_at(3, 40));
  EXPECT_FALSE(plan.crashed_at(3, 69));
  EXPECT_TRUE(plan.crashed_at(3, 70));
  EXPECT_TRUE(plan.crashed_at(3, 100000));
  EXPECT_FALSE(plan.crashed_at(2, 50));  // other peers unaffected
}

TEST(FaultPlan, StallAndBlackoutWindowsAreHalfOpen) {
  core::FaultPlan plan;
  plan.stalls.push_back({20, 60, 1});
  plan.blackouts.push_back({80, 160, 0, 2});

  EXPECT_FALSE(plan.stalled_at(1, 19));
  EXPECT_TRUE(plan.stalled_at(1, 20));
  EXPECT_TRUE(plan.stalled_at(1, 59));
  EXPECT_FALSE(plan.stalled_at(1, 60));
  EXPECT_TRUE(plan.down_at(1, 30));
  EXPECT_FALSE(plan.down_at(0, 30));

  EXPECT_FALSE(plan.blackout_at(0, 2, 79));
  EXPECT_TRUE(plan.blackout_at(0, 2, 80));
  EXPECT_TRUE(plan.blackout_at(0, 2, 159));
  EXPECT_FALSE(plan.blackout_at(0, 2, 160));
  EXPECT_FALSE(plan.blackout_at(2, 0, 100));  // directed edge
}

TEST(FaultPlan, NextBoundaryEnumeratesEveryEdge) {
  core::FaultPlan plan;
  plan.crashes.push_back({10, 0});
  plan.restarts.push_back({40, 0});
  plan.stalls.push_back({20, 60, 1});
  plan.joins.push_back({35, 2, false});
  plan.blackouts.push_back({80, 160, 0, 2});

  // Boundaries: 10, 20, 35, 40, 60, 80, 160.
  const std::vector<std::uint64_t> expected{10, 20, 35, 40, 60, 80, 160};
  std::uint64_t tick = 0;
  std::vector<std::uint64_t> seen;
  while (const auto next = plan.next_boundary_after(tick)) {
    seen.push_back(*next);
    tick = *next;
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(plan.next_boundary_after(160), std::nullopt);
}

// --- FaultTracker -----------------------------------------------------------

TEST(FaultTracker, AppliesEachMembershipEventOnceInOrder) {
  auto plan = std::make_shared<core::FaultPlan>();
  plan->crashes.push_back({10, 0});
  plan->crashes.push_back({30, 1});
  plan->joins.push_back({10, 2, true});
  core::FaultTracker tracker(plan);
  ASSERT_TRUE(tracker.active());
  EXPECT_TRUE(tracker.pending_joins());

  std::vector<std::string> fired;
  const auto on_crash = [&](std::size_t peer) {
    fired.push_back("crash" + std::to_string(peer));
  };
  const auto on_join = [&](std::size_t count, bool origin_fed) {
    fired.push_back("join" + std::to_string(count) +
                    (origin_fed ? "f" : "u"));
  };

  tracker.apply_until(9, on_crash, on_join);
  EXPECT_TRUE(fired.empty());
  tracker.apply_until(10, on_crash, on_join);
  // Crashes before joins within one application tick.
  EXPECT_EQ(fired, (std::vector<std::string>{"crash0", "join2f"}));
  EXPECT_FALSE(tracker.pending_joins());
  tracker.apply_until(10, on_crash, on_join);  // idempotent
  EXPECT_EQ(fired.size(), 2u);
  tracker.apply_until(1000, on_crash, on_join);
  EXPECT_EQ(fired, (std::vector<std::string>{"crash0", "join2f", "crash1"}));
}

TEST(FaultTracker, SuspectsExpireAndMergeToLatest) {
  core::FaultTracker tracker(std::make_shared<core::FaultPlan>());
  tracker.mark_suspect(4, 100);
  tracker.mark_suspect(4, 80);  // shorter mark must not shrink the window
  EXPECT_TRUE(tracker.suspect(4, 99));
  EXPECT_FALSE(tracker.suspect(4, 100));  // expiry is exclusive
  EXPECT_FALSE(tracker.suspect(5, 50));
  EXPECT_TRUE(tracker.unavailable(4, 50));
  EXPECT_FALSE(tracker.unavailable(4, 200));
}

TEST(FaultTracker, InertWithoutPlan) {
  core::FaultTracker tracker;
  EXPECT_FALSE(tracker.active());
  EXPECT_FALSE(tracker.down(0, 100));
  EXPECT_FALSE(tracker.pending_joins());
  EXPECT_EQ(tracker.next_boundary_after(0), std::nullopt);
}

// --- Gilbert-Elliott burst loss ---------------------------------------------

/// Sends `frames` one at a time over an untimed channel and returns the
/// per-frame delivered/lost sequence, read off the channel's drop counter
/// (the untimed receive path batches deliveries a hop behind, so observing
/// arrivals would split loss runs artificially).
std::vector<bool> loss_sequence(const wire::ChannelConfig& config,
                                std::size_t frames) {
  wire::LossyChannel channel(config);
  std::vector<bool> delivered;
  delivered.reserve(frames);
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < frames; ++i) {
    EXPECT_TRUE(channel.send(std::vector<std::uint8_t>(16, 1)));
    delivered.push_back(channel.dropped() == dropped);
    dropped = channel.dropped();
  }
  return delivered;
}

double mean_loss_run_length(const std::vector<bool>& delivered) {
  std::size_t runs = 0;
  std::size_t lost = 0;
  bool in_run = false;
  for (const bool ok : delivered) {
    if (!ok) {
      ++lost;
      if (!in_run) ++runs;
      in_run = true;
    } else {
      in_run = false;
    }
  }
  return runs == 0 ? 0.0
                   : static_cast<double>(lost) / static_cast<double>(runs);
}

TEST(GilbertElliott, BurstLossIsCorrelatedAtMatchedAverageRate) {
  constexpr std::size_t kFrames = 20000;
  // Bad state loses everything; stationary bad share 0.05/(0.05+0.2) = 0.2,
  // so the long-run loss rate matches a Bernoulli 0.2 channel — but losses
  // arrive in bursts of mean length 1/p_bad_good = 5.
  wire::ChannelConfig ge;
  ge.ge_loss_good = 0.0;
  ge.ge_loss_bad = 1.0;
  ge.ge_p_good_bad = 0.05;
  ge.ge_p_bad_good = 0.2;
  ge.seed = 11;
  ASSERT_TRUE(ge.gilbert_elliott());

  wire::ChannelConfig bernoulli;
  bernoulli.loss_rate = 0.2;
  bernoulli.seed = 12;
  ASSERT_FALSE(bernoulli.gilbert_elliott());

  const auto ge_seq = loss_sequence(ge, kFrames);
  const auto iid_seq = loss_sequence(bernoulli, kFrames);

  const auto loss_rate = [](const std::vector<bool>& seq) {
    std::size_t lost = 0;
    for (const bool ok : seq) lost += ok ? 0 : 1;
    return static_cast<double>(lost) / static_cast<double>(seq.size());
  };
  EXPECT_NEAR(loss_rate(ge_seq), 0.2, 0.05);
  EXPECT_NEAR(loss_rate(iid_seq), 0.2, 0.05);

  // Mean loss-burst length: ~5 for the chain, ~1.25 for i.i.d. loss. The
  // gap is what "burst loss" means; loose bounds so this never flakes.
  EXPECT_GT(mean_loss_run_length(ge_seq), 3.0);
  EXPECT_LT(mean_loss_run_length(iid_seq), 2.0);
}

// --- Engine-level fault recovery (untimed links for speed) ------------------

core::DeliveryOptions fault_options(std::shared_ptr<core::FaultPlan> plan) {
  core::DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 51;
  options.refresh_interval = 25;
  options.faults = std::move(plan);
  options.liveness_timeout_ticks = 12;
  options.handshake_backoff_factor = 2;
  options.handshake_backoff_cap_ticks = 32;
  options.max_handshake_retries = 4;
  options.suspect_ttl_ticks = 40;
  return options;
}

template <typename Service>
void add_peers(Service& service, std::size_t peers, std::size_t fed) {
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("p" + std::to_string(p), p < fed);
  }
}

TEST(FaultDelivery, CrashedPeerIsDownThenRestartsAndCompletes) {
  auto plan = std::make_shared<core::FaultPlan>();
  plan->crashes.push_back({30, 3});
  plan->restarts.push_back({90, 3});
  const auto content = random_content(64 * 40, 61);
  core::ContentDeliveryService service(content, fault_options(plan));
  add_peers(service, 5, 2);

  for (std::size_t t = 0; t < 31; ++t) service.tick();
  EXPECT_TRUE(service.peer_down(3));
  EXPECT_FALSE(service.peer_down(2));
  for (std::size_t t = 31; t < 91; ++t) service.tick();
  EXPECT_FALSE(service.peer_down(3));

  ASSERT_TRUE(service.run(8000));
  for (std::size_t p = 0; p < 5; ++p) {
    EXPECT_EQ(service.peer_content(p), content) << "peer " << p;
  }
  // The restarted peer rejoined and finished after its restart tick.
  EXPECT_GE(service.peer_completion_tick(3), 90u);
}

TEST(FaultDelivery, LivenessTimeoutRecordsFailedSenderDiagnostic) {
  // Two peers, one source: peer 1 downloads only from peer 0. Peer 0
  // crashes mid-transfer and never restarts — peer 1's receiver must
  // detect the silence via its liveness timeout, and the engine must
  // record the abandoned session instead of hanging.
  auto plan = std::make_shared<core::FaultPlan>();
  plan->crashes.push_back({30, 0});
  const auto content = random_content(64 * 60, 62);
  core::ContentDeliveryService service(content, fault_options(plan));
  add_peers(service, 2, 1);

  for (std::size_t t = 0; t < 400; ++t) service.tick();

  const auto result = service.session_result(1);
  EXPECT_FALSE(result.completed);
  ASSERT_FALSE(result.failed_peers.empty());
  EXPECT_EQ(result.failed_peers.front().peer, 0u);
  EXPECT_EQ(result.failed_peers.front().reason,
            core::FailedPeer::Reason::kLivenessTimeout);
  // Detection is prompt: liveness timeout (12) plus scheduling slack, not
  // an entire refresh epoch of silence.
  EXPECT_LE(result.failed_peers.front().tick, 30u + 12u + 5u);
}

TEST(FaultDelivery, BlackedOutHandshakeExhaustsRetryBudgetWithDiagnostic) {
  // The only edge into peer 1 is dark from the start: every handshake
  // frame is eaten, so the receiver must burn its capped-backoff retry
  // budget and fail the session with kHandshakeExhausted — the bounded
  // alternative to retrying forever.
  auto plan = std::make_shared<core::FaultPlan>();
  plan->blackouts.push_back({0, 100000, 0, 1});
  auto options = fault_options(plan);
  options.handshake_retry_ticks = 4;
  options.handshake_backoff_cap_ticks = 16;
  // The retry budget (4 retries at 4/8/16/16-tick spacing) must exhaust
  // within one refresh epoch, or every epoch resets the count before the
  // bounded-failure path can fire.
  options.refresh_interval = 100;
  const auto content = random_content(64 * 40, 63);
  core::ContentDeliveryService service(content, options);
  add_peers(service, 2, 1);

  for (std::size_t t = 0; t < 400; ++t) service.tick();

  const auto result = service.session_result(1);
  EXPECT_FALSE(result.completed);
  ASSERT_FALSE(result.failed_peers.empty());
  for (const auto& failed : result.failed_peers) {
    EXPECT_EQ(failed.peer, 0u);
    EXPECT_EQ(failed.reason, core::FailedPeer::Reason::kHandshakeExhausted);
  }
}

TEST(FaultDelivery, StalledPeerThawsAndCompletes) {
  auto plan = std::make_shared<core::FaultPlan>();
  plan->stalls.push_back({10, 80, 2});
  const auto content = random_content(64 * 60, 64);
  core::ContentDeliveryService service(content, fault_options(plan));
  add_peers(service, 4, 2);

  ASSERT_TRUE(service.run(8000));
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(service.peer_content(p), content) << "peer " << p;
  }
  // Frozen through [10, 80): the stalled peer cannot have finished its
  // download before thawing.
  EXPECT_GE(service.peer_completion_tick(2), 80u);
}

TEST(FaultDelivery, FlashCrowdJoinersAreServedAndRunWaitsForThem) {
  auto plan = std::make_shared<core::FaultPlan>();
  plan->joins.push_back({40, 3, false});
  const auto content = random_content(64 * 40, 65);
  core::ContentDeliveryService service(content, fault_options(plan));
  add_peers(service, 3, 1);
  EXPECT_EQ(service.peer_count(), 3u);

  // run() must not declare the swarm complete before the scheduled join
  // fires, even if every current peer finishes first.
  ASSERT_TRUE(service.run(10000));
  ASSERT_EQ(service.peer_count(), 6u);
  for (std::size_t p = 0; p < 6; ++p) {
    EXPECT_EQ(service.peer_content(p), content) << "peer " << p;
  }
  for (std::size_t p = 3; p < 6; ++p) {
    EXPECT_GT(service.peer_completion_tick(p), 40u) << "joiner " << p;
  }
}

// --- Cross-engine equality with faults enabled ------------------------------

std::shared_ptr<core::FaultPlan> churn_plan() {
  auto plan = std::make_shared<core::FaultPlan>();
  plan->crashes.push_back({30, 3});
  plan->restarts.push_back({75, 3});
  plan->stalls.push_back({40, 70, 4});
  plan->joins.push_back({50, 2, false});
  plan->blackouts.push_back({20, 60, 0, 2});
  return plan;
}

template <typename Service>
void drive_lockstep(Service& service, std::size_t max_ticks) {
  for (std::size_t t = 0; t < max_ticks; ++t) {
    service.tick();
    if (service.ticks() < 100) continue;  // past every scheduled fault
    bool all = true;
    for (std::size_t p = 0; p < service.peer_count(); ++p) {
      all = all && service.peer_complete(p);
    }
    if (all) return;
  }
}

template <typename A, typename B>
void expect_same_fault_trajectory(A& left, B& right) {
  ASSERT_EQ(left.peer_count(), right.peer_count());
  for (std::size_t p = 0; p < left.peer_count(); ++p) {
    ASSERT_NE(left.peer_completion_tick(p), 0u) << "peer " << p << " stuck";
    EXPECT_EQ(left.peer_completion_tick(p), right.peer_completion_tick(p))
        << "peer " << p;
    EXPECT_EQ(left.peer_content(p), right.peer_content(p)) << "peer " << p;
    const auto left_result = left.session_result(p);
    const auto right_result = right.session_result(p);
    ASSERT_EQ(left_result.failed_peers.size(),
              right_result.failed_peers.size())
        << "peer " << p;
    for (std::size_t i = 0; i < left_result.failed_peers.size(); ++i) {
      EXPECT_EQ(left_result.failed_peers[i].peer,
                right_result.failed_peers[i].peer);
      EXPECT_EQ(left_result.failed_peers[i].tick,
                right_result.failed_peers[i].tick);
      EXPECT_EQ(left_result.failed_peers[i].reason,
                right_result.failed_peers[i].reason);
    }
  }
  const auto left_totals = left.link_totals();
  const auto right_totals = right.link_totals();
  EXPECT_EQ(left_totals.control_bytes, right_totals.control_bytes);
  EXPECT_EQ(left_totals.control_frames, right_totals.control_frames);
  EXPECT_EQ(left_totals.data_bytes, right_totals.data_bytes);
  EXPECT_EQ(left_totals.data_frames, right_totals.data_frames);
}

TEST(FaultDelivery, Shards1MatchesLegacyUnderActiveFaultPlan) {
  const auto content = random_content(64 * 40, 66);
  core::ContentDeliveryService legacy(content, fault_options(churn_plan()));
  core::ShardedDelivery sharded(content, fault_options(churn_plan()),
                                core::ShardOptions{/*shards=*/1});
  add_peers(legacy, 5, 2);
  add_peers(sharded, 5, 2);
  drive_lockstep(legacy, 10000);
  drive_lockstep(sharded, 10000);
  expect_same_fault_trajectory(legacy, sharded);
}

TEST(FaultDelivery, MultiShardSwarmSurvivesChurn) {
  const auto content = random_content(64 * 40, 67);
  core::ShardedDelivery service(content, fault_options(churn_plan()),
                                core::ShardOptions{/*shards=*/2});
  add_peers(service, 6, 2);
  ASSERT_TRUE(service.run(10000));
  for (std::size_t p = 0; p < service.peer_count(); ++p) {
    EXPECT_EQ(service.peer_content(p), content) << "peer " << p;
  }
}

}  // namespace
}  // namespace icd

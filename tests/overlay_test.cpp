// Tests for icd::overlay: scenario builders, nodes, strategies, and the
// transfer harnesses that reproduce Section 6.3.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <vector>

#include "overlay/node.hpp"
#include "overlay/scenario.hpp"
#include "overlay/sim_config.hpp"
#include "overlay/strategy.hpp"
#include "overlay/transfer.hpp"

namespace icd::overlay {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.n = 400;
  config.seed = 9'000'001;
  return config;
}

TEST(Scenario, PairRespectsPaperConstruction) {
  util::Xoshiro256 rng(1);
  const auto s = make_pair_scenario(1000, kCompactStretch, 0.2, rng);
  EXPECT_EQ(s.distinct_symbols, 1100u);
  // Receiver has half the distinct symbols.
  EXPECT_EQ(s.receiver.size(), 550u);
  // Sender has the other half plus correlated extras, capped at n.
  EXPECT_GE(s.sender.size(), 550u);
  EXPECT_LE(s.sender.size(), 1000u);
  EXPECT_NEAR(s.correlation, 0.2, 0.01);

  // The correlated extras really are receiver symbols.
  const std::set<std::uint64_t> receiver_set(s.receiver.begin(),
                                             s.receiver.end());
  std::size_t shared = 0;
  for (const auto id : s.sender) shared += receiver_set.contains(id);
  EXPECT_NEAR(static_cast<double>(shared) / s.sender.size(), 0.2, 0.01);
}

TEST(Scenario, PairCapsSenderAtN) {
  util::Xoshiro256 rng(2);
  // Requested correlation 0.9 is infeasible in the compact scenario: the
  // sender would exceed n symbols. Expect clamping to ~0.45.
  const auto s = make_pair_scenario(1000, kCompactStretch, 0.9, rng);
  EXPECT_LE(s.sender.size(), 1000u);
  EXPECT_NEAR(s.correlation, 0.45, 0.01);
}

TEST(Scenario, PairCorrelationZeroMeansDisjoint) {
  util::Xoshiro256 rng(3);
  const auto s = make_pair_scenario(500, kStretchedStretch, 0.0, rng);
  std::set<std::uint64_t> all(s.receiver.begin(), s.receiver.end());
  for (const auto id : s.sender) {
    EXPECT_TRUE(all.insert(id).second);  // no overlap
  }
  EXPECT_EQ(all.size(), s.distinct_symbols);
}

TEST(Scenario, MultiPeersShareAndOwnUniquely) {
  util::Xoshiro256 rng(4);
  const auto s = make_multi_scenario(1000, kCompactStretch, 0.3, 4, rng);
  // Every peer has the same number of symbols.
  for (const auto& sender : s.senders) {
    EXPECT_EQ(sender.size(), s.receiver.size());
  }
  // Symbols are either in all peers or exactly one.
  std::unordered_set<std::uint64_t> receiver_set(s.receiver.begin(),
                                                 s.receiver.end());
  std::size_t in_all = 0;
  for (const auto id : s.receiver) {
    bool everywhere = true;
    for (const auto& sender : s.senders) {
      if (std::find(sender.begin(), sender.end(), id) == sender.end()) {
        everywhere = false;
        break;
      }
    }
    in_all += everywhere;
  }
  EXPECT_NEAR(static_cast<double>(in_all) / s.receiver.size(), 0.3, 0.05);
  EXPECT_NEAR(s.correlation, 0.3, 0.05);
}

TEST(Scenario, MultiDistinctBudgetRespected) {
  util::Xoshiro256 rng(5);
  for (const double c : {0.0, 0.2, 0.4}) {
    const auto s = make_multi_scenario(800, kStretchedStretch, c, 2, rng);
    std::set<std::uint64_t> all(s.receiver.begin(), s.receiver.end());
    for (const auto& sender : s.senders) {
      all.insert(sender.begin(), sender.end());
    }
    EXPECT_LE(all.size(), s.distinct_symbols);
    EXPECT_GE(all.size(), s.distinct_symbols - 3);  // rounding slack
  }
}

TEST(ReceiverNode, CountsDistinctSymbols) {
  const SimConfig config = small_config();
  ReceiverNode node({1, 2, 3}, 1000, config);
  EXPECT_EQ(node.symbol_count(), 3u);
  EXPECT_EQ(node.apply(Transmission{4, {}}), 1u);
  EXPECT_EQ(node.apply(Transmission{4, {}}), 0u);  // duplicate
  EXPECT_EQ(node.symbol_count(), 4u);
}

TEST(ReceiverNode, ResolvesRecodedSymbols) {
  const SimConfig config = small_config();
  ReceiverNode node({1, 2}, 1000, config);
  // XOR(1, 5): receiver knows 1, recovers 5.
  EXPECT_EQ(node.apply(Transmission{0, {1, 5}}), 1u);
  EXPECT_TRUE(node.has(5));
  // XOR(6, 7) buffers; then 6 arrives and 7 cascades.
  EXPECT_EQ(node.apply(Transmission{0, {6, 7}}), 0u);
  EXPECT_EQ(node.buffered_count(), 1u);
  EXPECT_EQ(node.apply(Transmission{6, {}}), 2u);
  EXPECT_TRUE(node.has(7));
}

TEST(ReceiverNode, SummariesCoverInitialSet) {
  const SimConfig config = small_config();
  std::vector<std::uint64_t> initial;
  for (std::uint64_t i = 0; i < 200; ++i) initial.push_back(i);
  ReceiverNode node(initial, 1000, config);
  const auto bloom = node.make_bloom();
  for (const auto id : initial) EXPECT_TRUE(bloom.contains(id));
  const auto sketch = node.make_sketch();
  const auto again = node.make_sketch();
  EXPECT_EQ(sketch.minima(), again.minima());  // deterministic
}

TEST(SenderNode, RandomStrategySendsOwnSymbols) {
  const SimConfig config = small_config();
  SenderNode sender({10, 11, 12}, Strategy::kRandom, config);
  util::Xoshiro256 rng(6);
  for (int i = 0; i < 50; ++i) {
    const auto t = sender.produce(rng);
    EXPECT_FALSE(t.is_recoded());
    EXPECT_TRUE(t.id >= 10 && t.id <= 12);
  }
}

TEST(SenderNode, BloomFilterRestrictsSendDomain) {
  const SimConfig config = small_config();
  std::vector<std::uint64_t> receiver_ids, sender_ids;
  for (std::uint64_t i = 0; i < 300; ++i) receiver_ids.push_back(i);
  for (std::uint64_t i = 150; i < 450; ++i) sender_ids.push_back(i);
  ReceiverNode receiver(receiver_ids, 1000, config);
  SenderNode sender(sender_ids, Strategy::kRandomBloom, config);
  util::Xoshiro256 rng(7);
  sender.install_bloom(receiver.make_bloom(), 0, rng);
  // The filtered domain contains no receiver symbols (no false negatives),
  // and most of the sender's fresh 150 (some lost to false positives).
  for (const auto id : sender.send_domain()) {
    EXPECT_GE(id, 300u);
  }
  EXPECT_GE(sender.send_domain().size(), 130u);
}

TEST(SenderNode, RecodeBloomRestrictsRecodeDomainToRequest) {
  const SimConfig config = small_config();
  std::vector<std::uint64_t> receiver_ids, sender_ids;
  for (std::uint64_t i = 0; i < 300; ++i) receiver_ids.push_back(i);
  for (std::uint64_t i = 300; i < 700; ++i) sender_ids.push_back(i);
  ReceiverNode receiver(receiver_ids, 1000, config);
  SenderNode sender(sender_ids, Strategy::kRecodeBloom, config);
  util::Xoshiro256 rng(8);
  sender.install_bloom(receiver.make_bloom(), 120, rng);
  EXPECT_EQ(sender.recode_domain().size(), 120u);
  // Transmissions only reference the restricted domain.
  const std::set<std::uint64_t> domain(sender.recode_domain().begin(),
                                       sender.recode_domain().end());
  for (int i = 0; i < 50; ++i) {
    const auto t = sender.produce(rng);
    EXPECT_TRUE(t.is_recoded());
    for (const auto id : t.constituents) EXPECT_TRUE(domain.contains(id));
  }
}

TEST(SenderNode, RecodeDegreesRespectCap) {
  const SimConfig config = small_config();
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 500; ++i) ids.push_back(i);
  SenderNode sender(ids, Strategy::kRecode, config);
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto t = sender.produce(rng);
    EXPECT_GE(t.constituents.size(), 1u);
    EXPECT_LE(t.constituents.size(), config.recode_degree_limit);
  }
}

TEST(SenderNode, MinwiseEstimateRaisesDegrees) {
  const SimConfig config = small_config();
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 500; ++i) ids.push_back(i);
  util::Xoshiro256 rng(10);

  SenderNode low(ids, Strategy::kRecodeMinwise, config);
  low.install_containment_estimate(0.0);
  SenderNode high(ids, Strategy::kRecodeMinwise, config);
  high.install_containment_estimate(0.8);

  double low_total = 0, high_total = 0;
  for (int i = 0; i < 300; ++i) {
    low_total += static_cast<double>(low.produce(rng).constituents.size());
    high_total += static_cast<double>(high.produce(rng).constituents.size());
  }
  EXPECT_GT(high_total, low_total * 2.0);
}

TEST(FullSender, ProducesFreshDisjointIds) {
  FullSender a(0), b(1);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ids.insert(a.produce().id).second);
    EXPECT_TRUE(ids.insert(b.produce().id).second);
  }
}

// --- End-to-end transfer shape checks (small n, single seed) --------------

TEST(Transfer, PairCompletesForAllStrategies) {
  const SimConfig config = small_config();
  util::Xoshiro256 rng(11);
  const auto scenario = make_pair_scenario(config.n, kCompactStretch, 0.1, rng);
  for (const Strategy strategy : kAllStrategies) {
    const auto result = run_pair_transfer(scenario, strategy, config);
    EXPECT_TRUE(result.completed) << strategy_name(strategy);
    EXPECT_GE(result.overhead(), 1.0) << strategy_name(strategy);
    // Recoded cascades can overshoot the target by a few symbols.
    EXPECT_GE(result.acquired, result.needed) << strategy_name(strategy);
  }
}

TEST(Transfer, RecodeBloomBeatsRandomInCompactScenario) {
  const SimConfig config = small_config();
  util::Xoshiro256 rng(12);
  const auto scenario =
      make_pair_scenario(config.n, kCompactStretch, 0.3, rng);
  const auto random = run_pair_transfer(scenario, Strategy::kRandom, config);
  const auto recode_bf =
      run_pair_transfer(scenario, Strategy::kRecodeBloom, config);
  ASSERT_TRUE(random.completed);
  ASSERT_TRUE(recode_bf.completed);
  EXPECT_LT(recode_bf.overhead(), random.overhead());
}

TEST(Transfer, RandomOverheadGrowsWithCorrelation) {
  const SimConfig config = small_config();
  util::Xoshiro256 rng(13);
  const auto low = run_pair_transfer(
      make_pair_scenario(config.n, kCompactStretch, 0.0, rng),
      Strategy::kRandom, config);
  const auto high = run_pair_transfer(
      make_pair_scenario(config.n, kCompactStretch, 0.4, rng),
      Strategy::kRandom, config);
  EXPECT_GT(high.overhead(), low.overhead());
}

TEST(Transfer, FullSenderSpeedupWithinBounds) {
  const SimConfig config = small_config();
  util::Xoshiro256 rng(14);
  const auto scenario =
      make_pair_scenario(config.n, kCompactStretch, 0.1, rng);
  for (const Strategy strategy : kAllStrategies) {
    const auto result =
        run_pair_with_full_sender(scenario, strategy, config);
    EXPECT_TRUE(result.completed) << strategy_name(strategy);
    const double speedup = result.speedup();
    // Adding any sender can't hurt (>= ~1) nor more than double (two equal
    //-rate senders).
    EXPECT_GE(speedup, 0.95) << strategy_name(strategy);
    EXPECT_LE(speedup, 2.05) << strategy_name(strategy);
  }
}

TEST(Transfer, MultiSenderRelativeRateScalesWithSenders) {
  const SimConfig config = small_config();
  util::Xoshiro256 rng(15);
  const auto two = make_multi_scenario(config.n, kStretchedStretch, 0.1, 2, rng);
  const auto four = make_multi_scenario(config.n, kStretchedStretch, 0.1, 4, rng);
  const auto r2 = run_multi_transfer(two, Strategy::kRecodeBloom, config);
  const auto r4 = run_multi_transfer(four, Strategy::kRecodeBloom, config);
  ASSERT_TRUE(r2.completed);
  ASSERT_TRUE(r4.completed);
  EXPECT_GT(r4.speedup(), r2.speedup());
  EXPECT_LE(r2.speedup(), 2.05);
  EXPECT_LE(r4.speedup(), 4.1);
}

TEST(Transfer, IncompleteRunsReportHonestly) {
  // A sender that cannot serve what the receiver needs: identical sets.
  SimConfig config = small_config();
  config.max_transmission_factor = 5;  // keep the cap cheap
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < config.n / 2; ++i) ids.push_back(i);
  PairScenario scenario;
  scenario.receiver = ids;
  scenario.sender = ids;
  scenario.distinct_symbols = ids.size();
  scenario.correlation = 1.0;
  const auto result = run_pair_transfer(scenario, Strategy::kRandom, config);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.transmissions, result.needed * 5);
}

TEST(Transfer, DeterministicForFixedSeed) {
  const SimConfig config = small_config();
  util::Xoshiro256 rng(16);
  const auto scenario =
      make_pair_scenario(config.n, kCompactStretch, 0.2, rng);
  const auto a = run_pair_transfer(scenario, Strategy::kRecode, config);
  const auto b = run_pair_transfer(scenario, Strategy::kRecode, config);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

}  // namespace
}  // namespace icd::overlay

// Tests for the arithmetic coder and compressed Bloom filters.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "filter/compressed_bloom.hpp"
#include "util/arith_coder.hpp"
#include "util/random.hpp"

namespace icd {
namespace {

std::vector<bool> random_bits(std::size_t n, double p1, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.next_bool(p1);
  return bits;
}

TEST(ArithCoder, BinaryEntropyKnownValues) {
  EXPECT_DOUBLE_EQ(util::binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(util::binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(util::binary_entropy(0.5), 1.0);
  EXPECT_NEAR(util::binary_entropy(0.1), 0.469, 0.001);
}

TEST(ArithCoder, RoundTripsAcrossProbabilities) {
  for (const double p1 : {0.01, 0.05, 0.2, 0.5, 0.8, 0.99}) {
    const auto bits = random_bits(5000, p1, 42);
    const auto coded = util::arith_encode_bits(bits, p1);
    const auto decoded = util::arith_decode_bits(coded, bits.size(), p1);
    ASSERT_EQ(decoded, bits) << "p1 = " << p1;
  }
}

TEST(ArithCoder, RoundTripsEdgeCases) {
  // Empty input.
  EXPECT_TRUE(util::arith_decode_bits(util::arith_encode_bits({}, 0.3), 0, 0.3)
                  .empty());
  // All-zero and all-one runs under extreme models.
  const std::vector<bool> zeros(1000, false);
  EXPECT_EQ(util::arith_decode_bits(util::arith_encode_bits(zeros, 0.001),
                                    1000, 0.001),
            zeros);
  const std::vector<bool> ones(1000, true);
  EXPECT_EQ(util::arith_decode_bits(util::arith_encode_bits(ones, 0.999),
                                    1000, 0.999),
            ones);
  // Mismatched model still round-trips (just compresses badly).
  const auto bits = random_bits(2000, 0.5, 7);
  EXPECT_EQ(util::arith_decode_bits(util::arith_encode_bits(bits, 0.5), 2000,
                                    0.5),
            bits);
}

TEST(ArithCoder, FuzzRoundTrips) {
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const double p1 = 0.01 + 0.98 * rng.next_double();
    const std::size_t n = rng.next_below(3000);
    const auto bits = random_bits(n, p1, 1000 + static_cast<std::uint64_t>(trial));
    const auto coded = util::arith_encode_bits(bits, p1);
    ASSERT_EQ(util::arith_decode_bits(coded, n, p1), bits)
        << "trial " << trial << " p1=" << p1 << " n=" << n;
  }
}

TEST(ArithCoder, CompressionApproachesEntropyBound) {
  constexpr std::size_t kBits = 200000;
  for (const double p1 : {0.02, 0.05, 0.1, 0.3}) {
    const auto bits = random_bits(kBits, p1, 5);
    const auto coded = util::arith_encode_bits(bits, p1);
    const double rate = 8.0 * static_cast<double>(coded.size()) / kBits;
    const double entropy = util::binary_entropy(p1);
    EXPECT_LT(rate, entropy * 1.08 + 0.01) << "p1 = " << p1;
    EXPECT_GT(rate, entropy * 0.9) << "p1 = " << p1;  // no magic
  }
}

TEST(CompressedBloom, RoundTripPreservesFilterExactly) {
  util::Xoshiro256 rng(6);
  auto filter = filter::CompressedBloomFilter::design(2000, 8.0);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back(rng());
  filter.insert_all(keys);
  const auto bytes = filter.serialize();
  const auto restored = filter::CompressedBloomFilter::deserialize(bytes);
  for (const auto key : keys) EXPECT_TRUE(restored.contains(key));
  for (int i = 0; i < 5000; ++i) {
    const auto probe = rng();
    EXPECT_EQ(filter.contains(probe), restored.contains(probe));
  }
}

TEST(CompressedBloom, BeatsClassicalFpAtEqualWireBudget) {
  // The Mitzenmacher result: at the same transmitted bits per element, the
  // compressed (larger, sparser) filter has a lower false-positive rate
  // than the classical RAM-optimal filter.
  constexpr std::size_t n = 5000;
  constexpr double kWireBudget = 8.0;
  util::Xoshiro256 rng(7);
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng());

  auto classical = filter::BloomFilter::with_bits_per_element(n, kWireBudget);
  classical.insert_all(keys);
  auto compressed = filter::CompressedBloomFilter::design(n, kWireBudget);
  compressed.insert_all(keys);

  // The compressed filter really fits the budget on the wire.
  const double wire_bits_per_element =
      8.0 * static_cast<double>(compressed.serialize().size()) / n;
  EXPECT_LT(wire_bits_per_element, kWireBudget * 1.10);

  std::size_t classical_fp = 0, compressed_fp = 0;
  constexpr std::size_t kProbes = 100000;
  for (std::size_t i = 0; i < kProbes; ++i) {
    const auto probe = rng();
    classical_fp += classical.contains(probe);
    compressed_fp += compressed.contains(probe);
  }
  EXPECT_LT(compressed_fp, classical_fp);
  // It costs memory: the in-RAM array is larger than the wire form.
  EXPECT_GT(compressed.memory_bits(), static_cast<std::size_t>(kWireBudget * n));
}

TEST(CompressedBloom, DesignRejectsBadInputs) {
  EXPECT_THROW(filter::CompressedBloomFilter::design(0, 8.0),
               std::invalid_argument);
  EXPECT_THROW(filter::CompressedBloomFilter::design(100, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace icd

// Integration tests for icd::core: origin servers, peers with stacked
// decoders, informed sessions over every strategy, and sketch-based
// admission control. These run the full-fidelity pipeline — real payloads,
// real decoding — end to end.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/admission.hpp"
#include "core/origin.hpp"
#include "core/peer.hpp"
#include "core/session.hpp"
#include "util/random.hpp"

namespace icd::core {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

struct Fixture {
  static constexpr std::size_t kBlocks = 250;
  static constexpr std::size_t kBlockSize = 24;

  Fixture()
      : content(random_content(kBlocks * kBlockSize - 5, 42)),
        origin(content, kBlockSize,
               codec::DegreeDistribution::robust_soliton(kBlocks), 777) {}

  Peer make_peer(const std::string& name) const {
    return Peer(name, origin.parameters(),
                codec::DegreeDistribution::robust_soliton(kBlocks));
  }

  std::vector<std::uint8_t> content;
  OriginServer origin;
};

TEST(OriginServer, GeometryAndDeterminism) {
  Fixture f;
  EXPECT_EQ(f.origin.block_count(), Fixture::kBlocks);
  EXPECT_EQ(f.origin.block_size(), Fixture::kBlockSize);
  EXPECT_EQ(f.origin.content_size(), f.content.size());
  EXPECT_EQ(f.origin.encode(123).payload, f.origin.encode(123).payload);
}

TEST(OriginServer, ParallelOriginsAreAdditive) {
  // "Additivity": two full senders with different stream seeds supply
  // disjoint symbols, so a client downloading from both needs no
  // orchestration.
  Fixture f;
  OriginServer mirror(f.content, Fixture::kBlockSize,
                      codec::DegreeDistribution::robust_soliton(Fixture::kBlocks),
                      777, /*stream_index=*/1);
  Peer client = f.make_peer("client");
  std::set<std::uint64_t> ids;
  while (!client.has_content()) {
    const auto s1 = f.origin.next();
    const auto s2 = mirror.next();
    EXPECT_TRUE(ids.insert(s1.id).second);
    EXPECT_TRUE(ids.insert(s2.id).second);
    client.receive_encoded(s1);
    client.receive_encoded(s2);
  }
  EXPECT_EQ(client.content(f.content.size()), f.content);
}

TEST(Peer, DecodesFromFountainAndReencodes) {
  Fixture f;
  Peer peer = f.make_peer("a");
  while (!peer.has_content()) peer.receive_encoded(f.origin.next());
  EXPECT_EQ(peer.content(f.content.size()), f.content);

  // Once decoded, the peer is itself a full sender: its re-encoded fresh
  // symbols decode at another peer.
  Peer downstream = f.make_peer("b");
  while (!downstream.has_content()) {
    downstream.receive_encoded(peer.encode_fresh());
  }
  EXPECT_EQ(downstream.content(f.content.size()), f.content);
}

TEST(Peer, EncodeFreshBeforeDecodingThrows) {
  Fixture f;
  Peer peer = f.make_peer("a");
  peer.receive_encoded(f.origin.next());
  EXPECT_THROW(peer.encode_fresh(), std::logic_error);
}

TEST(Peer, RecodedSymbolsCascadeThroughBothDecoders) {
  Fixture f;
  Peer sender = f.make_peer("sender");
  Peer receiver = f.make_peer("receiver");
  // Sender gets 150 symbols; receiver gets a different 150.
  for (int i = 0; i < 150; ++i) sender.receive_encoded(f.origin.next());
  for (int i = 0; i < 150; ++i) receiver.receive_encoded(f.origin.next());

  util::Xoshiro256 rng(1);
  const std::size_t before_blocks = receiver.blocks_recovered();
  // Degrees must be irregular (include some 1s) for peeling to start —
  // fixed degree >= 2 over a disjoint working set can never resolve.
  const auto dist =
      codec::DegreeDistribution::robust_soliton(150).truncated(50);
  std::size_t gained = 0;
  for (int i = 0; i < 400; ++i) {
    gained += receiver.receive_recoded(sender.recode(dist.sample(rng), rng));
  }
  EXPECT_GT(gained, 0u);
  EXPECT_GE(receiver.blocks_recovered(), before_blocks);
  EXPECT_EQ(receiver.symbol_count(), 150 + gained);
}

TEST(Peer, SketchTracksWorkingSet) {
  Fixture f;
  Peer a = f.make_peer("a");
  Peer b = f.make_peer("b");
  // Same symbols -> identical sketches -> resemblance 1.
  for (int i = 0; i < 100; ++i) {
    const auto symbol = f.origin.next();
    a.receive_encoded(symbol);
    b.receive_encoded(symbol);
  }
  EXPECT_DOUBLE_EQ(
      sketch::MinwiseSketch::resemblance(a.sketch(), b.sketch()), 1.0);
  // Diverge b.
  for (int i = 0; i < 100; ++i) b.receive_encoded(f.origin.next());
  const double r =
      sketch::MinwiseSketch::resemblance(a.sketch(), b.sketch());
  EXPECT_LT(r, 0.75);
  EXPECT_GT(r, 0.25);  // true resemblance 0.5
}

TEST(Peer, MismatchedCodesRejectedBySession) {
  Fixture f;
  Peer a = f.make_peer("a");
  Peer other("other", codec::CodeParameters{Fixture::kBlocks, 999},
             codec::DegreeDistribution::robust_soliton(Fixture::kBlocks));
  EXPECT_THROW(InformedSession(a, other, SessionOptions{}),
               std::invalid_argument);
}

class SessionStrategies
    : public ::testing::TestWithParam<overlay::Strategy> {};

TEST_P(SessionStrategies, PartialSenderDrivesReceiverToDecode) {
  Fixture f;
  Peer sender = f.make_peer("sender");
  Peer receiver = f.make_peer("receiver");
  // Disjoint working sets; together they exceed what decoding needs.
  for (int i = 0; i < 220; ++i) sender.receive_encoded(f.origin.next());
  for (int i = 0; i < 150; ++i) receiver.receive_encoded(f.origin.next());

  SessionOptions options;
  options.strategy = GetParam();
  options.requested_symbols = 200;
  InformedSession session(sender, receiver, options);
  session.handshake();
  const auto& stats = session.run(/*target_symbols=*/500,
                                  /*max_transmissions=*/4000);
  EXPECT_TRUE(receiver.has_content()) << strategy_name(GetParam());
  EXPECT_EQ(receiver.content(f.content.size()), f.content);
  EXPECT_GT(stats.symbols_useful, 0u);
  EXPECT_GE(stats.symbols_sent, stats.symbols_useful);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SessionStrategies,
                         ::testing::Values(overlay::Strategy::kRandom,
                                           overlay::Strategy::kRandomBloom,
                                           overlay::Strategy::kRecode,
                                           overlay::Strategy::kRecodeBloom,
                                           overlay::Strategy::kRecodeMinwise));

TEST(Session, HandshakeMeasuresControlTraffic) {
  Fixture f;
  Peer sender = f.make_peer("sender");
  Peer receiver = f.make_peer("receiver");
  for (int i = 0; i < 200; ++i) sender.receive_encoded(f.origin.next());
  for (int i = 0; i < 200; ++i) receiver.receive_encoded(f.origin.next());

  SessionOptions options;
  options.strategy = overlay::Strategy::kRecodeBloom;
  InformedSession session(sender, receiver, options);
  session.handshake();
  const auto& stats = session.stats();
  // Two sketches (~1 KB each, fragmented over the 1 KB-MTU pipe) + one
  // Bloom filter (~200 bytes at 8 bpe) + hellos and the request.
  EXPECT_GT(stats.control_bytes, 2000u);
  EXPECT_LT(stats.control_bytes, 4096u);
  // control_packets counts the actual control frames on the wire, both
  // directions: receiver hello + 2 sketch fragments + Bloom + request,
  // sender hello + 2 sketch fragments.
  const auto& tx = session.sender_transport().stats();
  const auto& rx = session.receiver_transport().stats();
  EXPECT_EQ(stats.control_packets,
            tx.control_frames_sent + rx.control_frames_sent);
  EXPECT_EQ(stats.control_bytes,
            tx.control_bytes_sent + rx.control_bytes_sent);
  EXPECT_GE(stats.control_packets, 7u);
  // Every frame respects the paper's 1 KB packet MTU.
  EXPECT_LE(stats.control_bytes, stats.control_packets * kSessionPipeMtu);
  // Disjoint sets: estimated containment near zero.
  EXPECT_LT(stats.estimated_containment, 0.15);
}

TEST(Session, StepBeforeHandshakeThrows) {
  Fixture f;
  Peer sender = f.make_peer("sender");
  Peer receiver = f.make_peer("receiver");
  sender.receive_encoded(f.origin.next());
  SessionOptions options;
  options.strategy = overlay::Strategy::kRandom;
  InformedSession session(sender, receiver, options);
  EXPECT_THROW(session.step(), std::logic_error);
}

TEST(Session, ArtSummaryWorksAsBloomAlternative) {
  Fixture f;
  Peer sender = f.make_peer("sender");
  Peer receiver = f.make_peer("receiver");
  for (int i = 0; i < 220; ++i) sender.receive_encoded(f.origin.next());
  for (int i = 0; i < 150; ++i) receiver.receive_encoded(f.origin.next());

  SessionOptions options;
  options.strategy = overlay::Strategy::kRecodeBloom;
  options.summary = SummaryKind::kArt;
  options.requested_symbols = 200;
  InformedSession session(sender, receiver, options);
  session.run(500, 4000);
  EXPECT_TRUE(receiver.has_content());
  EXPECT_EQ(receiver.content(f.content.size()), f.content);
}

TEST(Session, BloomFilterPreventsRedundantTransmissions) {
  Fixture f;
  Peer sender = f.make_peer("sender");
  Peer receiver = f.make_peer("receiver");
  // Highly correlated: the sender holds everything the receiver holds plus
  // 60 fresh symbols.
  std::vector<codec::EncodedSymbol> shared;
  for (int i = 0; i < 180; ++i) shared.push_back(f.origin.next());
  for (const auto& s : shared) {
    sender.receive_encoded(s);
    receiver.receive_encoded(s);
  }
  for (int i = 0; i < 60; ++i) sender.receive_encoded(f.origin.next());

  SessionOptions options;
  options.strategy = overlay::Strategy::kRandomBloom;
  InformedSession session(sender, receiver, options);
  session.handshake();
  for (int i = 0; i < 50; ++i) session.step();
  // Every symbol sent comes from the ~60-symbol filtered domain, so none of
  // the receiver's 180 held symbols is ever retransmitted. The memoryless
  // sender does resend coupons: 50 draws from ~60 cover ~60(1 - e^{-5/6})
  // ~ 34 distinct symbols.
  EXPECT_GE(session.stats().symbols_useful, 25u);
  EXPECT_EQ(session.stats().symbols_useful,
            session.stats().new_encoded_symbols);
}

TEST(Admission, RejectsIdenticalContent) {
  Fixture f;
  Peer receiver = f.make_peer("receiver");
  Peer twin = f.make_peer("twin");
  Peer fresh = f.make_peer("fresh");
  for (int i = 0; i < 150; ++i) {
    const auto symbol = f.origin.next();
    receiver.receive_encoded(symbol);
    twin.receive_encoded(symbol);
  }
  for (int i = 0; i < 150; ++i) fresh.receive_encoded(f.origin.next());

  const AdmissionPolicy policy;
  const auto twin_decision = evaluate_candidate(
      receiver.sketch(), receiver.symbol_count(),
      CandidateSender{0, &twin.sketch(), twin.symbol_count()}, policy);
  EXPECT_FALSE(twin_decision.admitted);
  EXPECT_GT(twin_decision.resemblance, 0.95);

  const auto fresh_decision = evaluate_candidate(
      receiver.sketch(), receiver.symbol_count(),
      CandidateSender{1, &fresh.sketch(), fresh.symbol_count()}, policy);
  EXPECT_TRUE(fresh_decision.admitted);
  EXPECT_GT(fresh_decision.novelty, 0.8);
}

TEST(Admission, SelectSendersRanksByNovelty) {
  Fixture f;
  Peer receiver = f.make_peer("receiver");
  Peer overlapping = f.make_peer("overlapping");
  Peer fresh = f.make_peer("fresh");
  std::vector<codec::EncodedSymbol> pool;
  for (int i = 0; i < 300; ++i) pool.push_back(f.origin.next());
  for (int i = 0; i < 150; ++i) receiver.receive_encoded(pool[i]);
  for (int i = 100; i < 250; ++i) overlapping.receive_encoded(pool[i]);
  for (int i = 150; i < 300; ++i) fresh.receive_encoded(pool[i]);

  const std::vector<CandidateSender> candidates{
      {7, &overlapping.sketch(), overlapping.symbol_count()},
      {9, &fresh.sketch(), fresh.symbol_count()},
  };
  const auto selected = select_senders(receiver.sketch(),
                                       receiver.symbol_count(), candidates,
                                       AdmissionPolicy{}, 2);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], 9u);  // disjoint peer ranks first
  EXPECT_EQ(selected[1], 7u);
}

TEST(Admission, GroupOverlapFromSketchesAlone) {
  Fixture f;
  Peer a = f.make_peer("a");
  Peer b = f.make_peer("b");
  for (int i = 0; i < 200; ++i) {
    const auto symbol = f.origin.next();
    a.receive_encoded(symbol);
    b.receive_encoded(symbol);
  }
  const double same = estimate_group_overlap({&a.sketch(), &b.sketch()});
  EXPECT_GT(same, 0.95);
  Peer c = f.make_peer("c");
  for (int i = 0; i < 200; ++i) c.receive_encoded(f.origin.next());
  const double mixed = estimate_group_overlap(
      {&a.sketch(), &b.sketch(), &c.sketch()});
  EXPECT_LT(mixed, same);
}

}  // namespace
}  // namespace icd::core

// Tests for icd::reconcile: GF(p) arithmetic, polynomials, CPI exact
// reconciliation, the exact baselines, and the unified facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "reconcile/cpi.hpp"
#include "reconcile/gf.hpp"
#include "reconcile/polynomial.hpp"
#include "reconcile/reconciler.hpp"
#include "reconcile/set_difference.hpp"
#include "util/random.hpp"

namespace icd::reconcile {
namespace {

std::vector<std::uint64_t> random_keys_below(std::size_t n,
                                             std::uint64_t bound,
                                             std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::set<std::uint64_t> keys;
  while (keys.size() < n) keys.insert(rng.next_below(bound));
  return {keys.begin(), keys.end()};
}

TEST(Fp, FieldAxiomsSpotCheck) {
  const Fp a(123456789), b(987654321), c(555);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a + Fp(0), a);
  EXPECT_EQ(a * Fp(1), a);
  EXPECT_EQ(a - a, Fp(0));
}

TEST(Fp, ReductionWrapsModulus) {
  EXPECT_EQ(Fp(Fp::kP), Fp(0));
  EXPECT_EQ(Fp(Fp::kP + 5), Fp(5));
  EXPECT_EQ(Fp(Fp::kP - 1) + Fp(1), Fp(0));
}

TEST(Fp, MultiplicationMatchesWideArithmetic) {
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = rng.next_below(Fp::kP);
    const std::uint64_t y = rng.next_below(Fp::kP);
    const auto expected = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(x) * y % Fp::kP);
    EXPECT_EQ((Fp(x) * Fp(y)).value(), expected);
  }
}

TEST(Fp, InverseIsMultiplicativeInverse) {
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    const Fp a(1 + rng.next_below(Fp::kP - 1));
    EXPECT_EQ(a * a.inverse(), Fp(1));
  }
  EXPECT_THROW(Fp(0).inverse(), std::domain_error);
}

TEST(Fp, PowMatchesRepeatedMultiplication) {
  const Fp base(7);
  Fp acc(1);
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(Fp::pow(base, e), acc);
    acc *= base;
  }
}

TEST(Polynomial, FromRootsEvaluatesToZeroAtRoots) {
  const std::vector<Fp> roots{Fp(3), Fp(17), Fp(123456)};
  const auto poly = Polynomial::from_roots(roots);
  EXPECT_EQ(poly.degree(), 3);
  for (const Fp r : roots) EXPECT_TRUE(poly.eval(r).is_zero());
  EXPECT_FALSE(poly.eval(Fp(4)).is_zero());
}

TEST(Polynomial, FromRootsIsMonic) {
  const auto poly = Polynomial::from_roots({Fp(2), Fp(5)});
  // (z-2)(z-5) = z^2 - 7z + 10.
  EXPECT_EQ(poly.coefficient(2), Fp(1));
  EXPECT_EQ(poly.coefficient(1), Fp(0) - Fp(7));
  EXPECT_EQ(poly.coefficient(0), Fp(10));
}

TEST(Polynomial, MultiplicationMatchesRootConcatenation) {
  const auto a = Polynomial::from_roots({Fp(1), Fp(2)});
  const auto b = Polynomial::from_roots({Fp(3)});
  const auto product = a * b;
  const auto direct = Polynomial::from_roots({Fp(1), Fp(2), Fp(3)});
  EXPECT_EQ(product.coefficients(), direct.coefficients());
}

TEST(Polynomial, ZeroAndAddition) {
  EXPECT_TRUE(Polynomial::zero().is_zero());
  EXPECT_EQ(Polynomial::zero().degree(), -1);
  const auto p = Polynomial({Fp(1), Fp(2)});
  const auto q = Polynomial({Fp(Fp::kP - 1), Fp(Fp::kP - 2)});
  EXPECT_TRUE((p + q).is_zero());
}

TEST(Cpi, SketchEvaluatesCharacteristicPolynomial) {
  const std::vector<std::uint64_t> keys{10, 20, 30};
  const auto sketch = make_cpi_sketch(keys, 4);
  ASSERT_EQ(sketch.evaluations.size(), 4u);
  EXPECT_EQ(sketch.set_size, 3u);
  const auto poly =
      Polynomial::from_roots({Fp(10), Fp(20), Fp(30)});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sketch.evaluations[i], poly.eval(cpi_evaluation_point(i)));
  }
}

TEST(Cpi, RejectsOversizedKeys) {
  EXPECT_THROW(make_cpi_sketch({kMaxCpiKey}, 2), std::invalid_argument);
}

TEST(Cpi, ReconcilesSymmetricDifference) {
  // A and B share 200 keys; A has 7 extra, B has 5 extra.
  const auto shared = random_keys_below(200, kMaxCpiKey, 3);
  const auto a_extra = random_keys_below(7, kMaxCpiKey, 4);
  const auto b_extra = random_keys_below(5, kMaxCpiKey, 5);
  std::vector<std::uint64_t> a = shared, b = shared;
  a.insert(a.end(), a_extra.begin(), a_extra.end());
  b.insert(b.end(), b_extra.begin(), b_extra.end());

  const auto sketch = make_cpi_sketch(a, 24);
  const auto result = cpi_reconcile(b, sketch, 16);
  ASSERT_TRUE(result.verified);
  EXPECT_EQ(result.remote_only_count, 7u);
  std::set<std::uint64_t> found(result.local_only.begin(),
                                result.local_only.end());
  EXPECT_EQ(found, std::set<std::uint64_t>(b_extra.begin(), b_extra.end()));
}

TEST(Cpi, IdenticalSetsVerifyWithEmptyDifference) {
  const auto keys = random_keys_below(100, kMaxCpiKey, 6);
  const auto sketch = make_cpi_sketch(keys, 12);
  const auto result = cpi_reconcile(keys, sketch, 4);
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(result.local_only.empty());
  EXPECT_EQ(result.remote_only_count, 0u);
}

TEST(Cpi, OneSidedDifference) {
  // B is a strict superset of A.
  auto a = random_keys_below(50, kMaxCpiKey, 7);
  auto b = a;
  const auto extra = random_keys_below(6, kMaxCpiKey, 8);
  b.insert(b.end(), extra.begin(), extra.end());
  const auto sketch = make_cpi_sketch(a, 20);
  const auto result = cpi_reconcile(b, sketch, 10);
  ASSERT_TRUE(result.verified);
  EXPECT_EQ(result.remote_only_count, 0u);
  EXPECT_EQ(result.local_only.size(), 6u);
}

TEST(Cpi, UndersizedBoundReportsUnverified) {
  const auto shared = random_keys_below(50, kMaxCpiKey, 9);
  auto a = shared, b = shared;
  const auto a_extra = random_keys_below(10, kMaxCpiKey, 10);
  const auto b_extra = random_keys_below(10, kMaxCpiKey, 11);
  a.insert(a.end(), a_extra.begin(), a_extra.end());
  b.insert(b.end(), b_extra.begin(), b_extra.end());
  // Total discrepancy 20, but bound only allows 8.
  const auto sketch = make_cpi_sketch(a, 12);
  const auto result = cpi_reconcile(b, sketch, 8);
  EXPECT_FALSE(result.verified);
}

TEST(Cpi, WireSizeScalesWithDiscrepancyNotSetSize) {
  // The paper's point: O(d log u) bits regardless of |S_A|.
  const auto small = make_cpi_sketch(random_keys_below(100, kMaxCpiKey, 12), 20);
  const auto large = make_cpi_sketch(random_keys_below(5000, kMaxCpiKey, 13), 20);
  EXPECT_EQ(small.wire_bytes(), large.wire_bytes());
}

TEST(SetDifference, WholeSetIsExact) {
  auto a = random_keys_below(500, 1ULL << 62, 14);
  auto b = a;
  const auto extra = random_keys_below(30, 1ULL << 62, 15);
  b.insert(b.end(), extra.begin(), extra.end());
  const auto message = make_whole_set_message(a);
  const auto diff = whole_set_difference(b, message);
  EXPECT_EQ(std::set<std::uint64_t>(diff.begin(), diff.end()),
            std::set<std::uint64_t>(extra.begin(), extra.end()));
  EXPECT_EQ(message.wire_bytes(), 500 * 8 + 8u);
}

TEST(SetDifference, HashedSetExactUpToCollisions) {
  auto a = random_keys_below(2000, 1ULL << 62, 16);
  auto b = a;
  const auto extra = random_keys_below(100, 1ULL << 62, 17);
  b.insert(b.end(), extra.begin(), extra.end());
  const auto message = make_hashed_set_message(a, 1ULL << 40);
  const auto diff = hashed_set_difference(b, message);
  // With h = 2^40 and 2000 elements, collisions are ~2000*100/2^40 ~ 0.
  EXPECT_EQ(diff.size(), 100u);
  // And the message is smaller than the whole set (40 vs 64 bits/element).
  EXPECT_LT(message.wire_bytes(), make_whole_set_message(a).wire_bytes());
}

TEST(SetDifference, BloomNeverReportsFalseDifferences) {
  // One-sided error: everything reported is certainly a difference.
  auto a = random_keys_below(3000, 1ULL << 62, 18);
  auto b = a;
  const auto extra = random_keys_below(150, 1ULL << 62, 19);
  b.insert(b.end(), extra.begin(), extra.end());
  auto filter = filter::BloomFilter::with_bits_per_element(a.size(), 8.0);
  filter.insert_all(a);
  const std::set<std::uint64_t> truth(extra.begin(), extra.end());
  const auto diff = bloom_set_difference(b, filter);
  for (const auto key : diff) EXPECT_TRUE(truth.contains(key));
  // And it finds most of them (fp ~ 2% at 8 bits/element).
  EXPECT_GE(diff.size(), 135u);
}

class ReconcilerFacade : public ::testing::TestWithParam<Method> {};

TEST_P(ReconcilerFacade, FindsMostDifferencesWithoutFalsePositives) {
  const Method method = GetParam();
  auto remote = random_keys_below(1500, kMaxCpiKey, 20);
  auto local = remote;
  const auto extra = random_keys_below(60, kMaxCpiKey, 21);
  local.insert(local.end(), extra.begin(), extra.end());

  ReconcileOptions options;
  options.method = method;
  options.cpi_max_discrepancy = 80;
  const auto outcome = reconcile(local, remote, options);

  const std::set<std::uint64_t> truth(extra.begin(), extra.end());
  for (const auto key : outcome.local_minus_remote) {
    EXPECT_TRUE(truth.contains(key)) << method_name(method);
  }
  // Exact methods find everything; approximate ones find most.
  const std::size_t found = outcome.local_minus_remote.size();
  if (method == Method::kWholeSet || method == Method::kHashedSet ||
      method == Method::kCpi) {
    EXPECT_EQ(found, 60u) << method_name(method);
    EXPECT_TRUE(outcome.exact_method_verified);
  } else {
    EXPECT_GE(found, 40u) << method_name(method);
  }
  EXPECT_GT(outcome.summary_bytes, 0u);
  EXPECT_EQ(outcome.summary_packets,
            (outcome.summary_bytes + 1023) / 1024);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ReconcilerFacade,
                         ::testing::Values(Method::kWholeSet,
                                           Method::kHashedSet,
                                           Method::kBloomFilter, Method::kArt,
                                           Method::kCpi));

TEST(ReconcilerFacade, WireSizeOrdering) {
  // For a small difference in a large set: CPI << Bloom/ART < hashed <
  // whole set, the communication-complexity story of Section 5.
  auto remote = random_keys_below(4000, kMaxCpiKey, 22);
  auto local = remote;
  const auto extra = random_keys_below(20, kMaxCpiKey, 23);
  local.insert(local.end(), extra.begin(), extra.end());

  const auto bytes = [&](Method m) {
    ReconcileOptions options;
    options.method = m;
    options.cpi_max_discrepancy = 32;
    return reconcile(local, remote, options).summary_bytes;
  };
  const auto cpi = bytes(Method::kCpi);
  const auto bloom = bytes(Method::kBloomFilter);
  const auto art = bytes(Method::kArt);
  const auto hashed = bytes(Method::kHashedSet);
  const auto whole = bytes(Method::kWholeSet);
  EXPECT_LT(cpi, bloom);
  EXPECT_LT(bloom, hashed);
  EXPECT_LT(art, hashed);
  EXPECT_LT(hashed, whole);
}

TEST(ReconcilerFacade, EmptyRemoteMeansEverythingIsDifference) {
  ReconcileOptions options;
  options.method = Method::kBloomFilter;
  const std::vector<std::uint64_t> local{1, 2, 3};
  const auto outcome = reconcile(local, {}, options);
  EXPECT_EQ(outcome.local_minus_remote.size(), 3u);
}

}  // namespace
}  // namespace icd::reconcile

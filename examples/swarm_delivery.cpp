// Swarm delivery: the paper's motivating Figure 1 as running code.
//
// A source S and five end-systems A..E. The tree topology (Figure 1(a))
// delivers content at the bottleneck rate; adding collaborative
// "perpendicular" peer connections (Figure 1(c)) with informed transfers
// lets peers fill in each other's gaps and finish much sooner.
//
// The example runs the same workload twice — tree only, then tree plus
// informed peer collaboration (admission-controlled by min-wise sketches) —
// and prints the round at which each node completes.
//
// Build & run:  ./examples/swarm_delivery
#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/admission.hpp"
#include "core/origin.hpp"
#include "core/peer.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;

constexpr std::size_t kBlocks = 400;
constexpr std::size_t kBlockSize = 64;
constexpr std::size_t kPeers = 5;
// Tree edges (parent -> child) mirroring Figure 1(a):
//   S -> A, S -> B, A -> C, A -> D, B -> E
constexpr int kParent[kPeers] = {-1, -1, 0, 0, 1};
// Per-edge capacities in symbols/round; the leaves sit behind bottlenecks.
constexpr int kTreeRate[kPeers] = {3, 3, 1, 1, 1};

struct Swarm {
  std::vector<std::uint8_t> file;
  std::unique_ptr<core::OriginServer> origin;
  std::vector<core::Peer> peers;

  explicit Swarm(std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    file.resize(kBlocks * kBlockSize);
    for (auto& byte : file) byte = static_cast<std::uint8_t>(rng());
    origin = std::make_unique<core::OriginServer>(
        file, kBlockSize, codec::DegreeDistribution::robust_soliton(kBlocks),
        1234);
    const char* names[kPeers] = {"A", "B", "C", "D", "E"};
    for (std::size_t i = 0; i < kPeers; ++i) {
      peers.emplace_back(names[i], origin->parameters(),
                         codec::DegreeDistribution::robust_soliton(kBlocks));
    }
  }

  /// One round of tree traffic: each node receives kTreeRate[i] symbols
  /// from its parent (the source re-encodes; inner nodes forward what they
  /// have via degree-1 recodes of random held symbols).
  void tree_round(util::Xoshiro256& rng) {
    for (std::size_t i = 0; i < kPeers; ++i) {
      for (int r = 0; r < kTreeRate[i]; ++r) {
        if (kParent[i] < 0) {
          peers[i].receive_encoded(origin->next());
        } else {
          core::Peer& parent = peers[static_cast<std::size_t>(kParent[i])];
          if (parent.symbol_count() == 0) continue;
          if (parent.has_content()) {
            peers[i].receive_encoded(parent.encode_fresh());
          } else {
            // Forward a random held symbol (the naive overlay behaviour the
            // paper starts from: end-systems acting like routers).
            const auto& ids = parent.symbol_ids();
            util::Xoshiro256 pick(rng());
            const auto id = ids[pick.next_below(ids.size())];
            peers[i].receive_encoded(
                codec::EncodedSymbol{id, parent.symbol_payload(id)});
          }
        }
      }
    }
  }

  /// One round of collaborative traffic: each incomplete peer picks its
  /// most-novel admissible neighbour by sketch comparison and pulls one
  /// recoded symbol across the perpendicular connection.
  void collab_round(util::Xoshiro256& rng) {
    for (std::size_t i = 0; i < kPeers; ++i) {
      core::Peer& receiver = peers[i];
      if (receiver.has_content()) continue;
      std::vector<core::CandidateSender> candidates;
      for (std::size_t j = 0; j < kPeers; ++j) {
        if (j == i || peers[j].symbol_count() == 0) continue;
        candidates.push_back(core::CandidateSender{
            j, &peers[j].sketch(), peers[j].symbol_count()});
      }
      const auto selected =
          core::select_senders(receiver.sketch(), receiver.symbol_count(),
                               candidates, core::AdmissionPolicy{}, 1);
      if (selected.empty()) continue;
      core::Peer& sender = peers[selected.front()];
      const double r = sketch::MinwiseSketch::resemblance(receiver.sketch(),
                                                          sender.sketch());
      const double c = sketch::containment_from_resemblance(
          r, receiver.symbol_count(), sender.symbol_count());
      const auto degree = codec::optimal_recode_degree(
          sender.symbol_count(), c, codec::kDefaultRecodeDegreeLimit);
      receiver.receive_recoded(sender.recode(degree, rng));
    }
  }

  std::size_t complete_count() const {
    std::size_t done = 0;
    for (const auto& peer : peers) done += peer.has_content();
    return done;
  }
};

std::array<std::size_t, kPeers> run(bool collaborate, std::uint64_t seed) {
  Swarm swarm(seed);
  util::Xoshiro256 rng(seed ^ 0xabcdef);
  std::array<std::size_t, kPeers> finish_round{};
  finish_round.fill(0);
  for (std::size_t round = 1; round <= 5000; ++round) {
    swarm.tree_round(rng);
    if (collaborate) swarm.collab_round(rng);
    for (std::size_t i = 0; i < kPeers; ++i) {
      if (finish_round[i] == 0 && swarm.peers[i].has_content()) {
        finish_round[i] = round;
      }
    }
    if (swarm.complete_count() == kPeers) break;
  }
  // Verify every completed peer actually reconstructs the file.
  for (auto& peer : swarm.peers) {
    if (peer.has_content() && peer.content(swarm.file.size()) != swarm.file) {
      std::fprintf(stderr, "CORRUPT content at peer %s\n",
                   peer.name().c_str());
    }
  }
  return finish_round;
}

}  // namespace

int main() {
  std::printf("swarm delivery: %zu blocks, tree S->{A,B}, A->{C,D}, B->E\n",
              kBlocks);
  std::printf("leaf links are 1 symbol/round bottlenecks; root links carry "
              "3/round\n\n");

  const auto tree_only = run(/*collaborate=*/false, 11);
  const auto informed = run(/*collaborate=*/true, 11);

  const char* names[kPeers] = {"A", "B", "C", "D", "E"};
  std::printf("%6s %18s %22s\n", "node", "tree only (round)",
              "tree + informed (round)");
  for (std::size_t i = 0; i < kPeers; ++i) {
    std::printf("%6s %18zu %22zu\n", names[i], tree_only[i], informed[i]);
  }

  std::size_t worst_tree = 0, worst_informed = 0;
  for (std::size_t i = 0; i < kPeers; ++i) {
    worst_tree = std::max(worst_tree, tree_only[i]);
    worst_informed = std::max(worst_informed, informed[i]);
  }
  if (worst_tree == 0) worst_tree = 5000;  // never finished
  std::printf("\nlast finisher: %zu rounds (tree) vs %zu rounds (informed) "
              "— %.1fx faster\n",
              worst_tree, worst_informed,
              static_cast<double>(worst_tree) /
                  static_cast<double>(worst_informed));
  return worst_informed <= worst_tree ? 0 : 1;
}

// Parallel downloads from partial senders: the Figure 7/8 experiment as an
// application, with real payloads and real decoding.
//
// A client downloads the same file three ways:
//   (a) from one full mirror,
//   (b) from two partial peers (each holding a different ~60% of the
//       symbol pool) using naive random forwarding,
//   (c) from the same two partial peers using informed Recode/BF sessions.
// It prints rounds-to-decode for each, demonstrating the paper's claim that
// informed partial senders are nearly additive "as with a true digital
// fountain".
//
// Build & run:  ./examples/parallel_download
#include <cstdio>
#include <vector>

#include "core/origin.hpp"
#include "core/peer.hpp"
#include "core/session.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;

constexpr std::size_t kBlocks = 500;
constexpr std::size_t kBlockSize = 32;

struct World {
  std::vector<std::uint8_t> file;
  core::OriginServer origin;
  codec::DegreeDistribution dist;

  World()
      : file(make_file()),
        origin(file, kBlockSize,
               codec::DegreeDistribution::robust_soliton(kBlocks), 2718),
        dist(codec::DegreeDistribution::robust_soliton(kBlocks)) {}

  static std::vector<std::uint8_t> make_file() {
    util::Xoshiro256 rng(3);
    std::vector<std::uint8_t> file(kBlocks * kBlockSize);
    for (auto& byte : file) byte = static_cast<std::uint8_t>(rng());
    return file;
  }

  core::Peer make_peer(const std::string& name) const {
    return core::Peer(name, origin.parameters(), dist);
  }
};

/// (a) Baseline: one full mirror at one symbol per round.
std::size_t full_mirror(const World& world) {
  core::OriginServer mirror(world.file, kBlockSize, world.dist, 2718,
                            /*stream_index=*/7);
  core::Peer client = world.make_peer("client");
  std::size_t rounds = 0;
  while (!client.has_content()) {
    client.receive_encoded(mirror.next());
    ++rounds;
  }
  return rounds;
}

/// Loads two partial peers with ~60% of a shared symbol pool each.
std::pair<core::Peer, core::Peer> make_partials(const World& world) {
  core::OriginServer feed(world.file, kBlockSize, world.dist, 2718,
                          /*stream_index=*/9);
  core::Peer p1 = world.make_peer("peer1");
  core::Peer p2 = world.make_peer("peer2");
  // 700 distinct symbols; each peer holds 420 of them, 140 in common.
  std::vector<codec::EncodedSymbol> pool;
  for (int i = 0; i < 700; ++i) pool.push_back(feed.next());
  for (int i = 0; i < 420; ++i) p1.receive_encoded(pool[static_cast<std::size_t>(i)]);
  for (int i = 280; i < 700; ++i) p2.receive_encoded(pool[static_cast<std::size_t>(i)]);
  return {std::move(p1), std::move(p2)};
}

/// (b)/(c): download from both partial peers, one symbol each per round.
std::size_t parallel_partial(const World& world, overlay::Strategy strategy) {
  auto [p1, p2] = make_partials(world);
  core::Peer client = world.make_peer("client");

  core::SessionOptions options;
  options.strategy = strategy;
  options.requested_symbols = 320;  // ~half the need, per sender
  core::InformedSession s1(p1, client, options);
  options.seed ^= 0x5eed;
  core::InformedSession s2(p2, client, options);
  s1.handshake();
  s2.handshake();

  std::size_t rounds = 0;
  while (!client.has_content() && rounds < 20000) {
    s1.step();
    if (!client.has_content()) s2.step();
    ++rounds;
  }
  if (!client.has_content() || client.content(world.file.size()) != world.file) {
    return 0;  // failed
  }
  return rounds;
}

}  // namespace

int main() {
  World world;
  std::printf("parallel download of %zu blocks (%zu KB)\n", kBlocks,
              kBlocks * kBlockSize / 1024);

  const auto base = full_mirror(world);
  std::printf("\n(a) one full mirror:            %5zu rounds (baseline)\n",
              base);

  const auto naive =
      parallel_partial(world, overlay::Strategy::kRandom);
  std::printf("(b) two partials, Random:       %5zu rounds (%.2fx)\n", naive,
              naive ? static_cast<double>(base) / static_cast<double>(naive)
                    : 0.0);

  const auto informed =
      parallel_partial(world, overlay::Strategy::kRecodeBloom);
  std::printf("(c) two partials, Recode/BF:    %5zu rounds (%.2fx)\n",
              informed,
              informed
                  ? static_cast<double>(base) / static_cast<double>(informed)
                  : 0.0);

  std::printf("\ninformed collaboration turns two partial peers into "
              "nearly two mirrors.\n");
  return informed != 0 && naive != 0 ? 0 : 1;
}

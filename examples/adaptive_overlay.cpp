// Adaptive overlay demo: the Section 2.1 environment end to end.
//
// Twelve peers download a file through an overlay that suffers 10% link
// loss and periodic peer crashes, while peers join at staggered times.
// The run is repeated with overlay adaptation (periodic reconfiguration +
// sketch-based sender selection) switched off and on, printing completion
// statistics for both.
//
// Build & run:  ./examples/adaptive_overlay
#include <cstdio>

#include "overlay/simulator.hpp"

int main() {
  using namespace icd::overlay;

  AdaptiveOverlayConfig config;
  config.base.n = 400;
  config.base.seed = 20260612;
  config.peer_count = 12;
  config.origin_fanout = 2;
  config.connections_per_peer = 2;
  config.loss_rate = 0.10;
  config.churn_rate = 0.002;
  config.join_stagger = 15;
  config.strategy = Strategy::kRecodeBloom;
  config.max_rounds = 60000;

  std::printf("adaptive overlay: 12 peers, 10%% loss, churn, staggered "
              "joins, Recode/BF connections\n\n");
  std::printf("%-28s %12s %14s %12s %10s\n", "configuration", "mean rounds",
              "last finisher", "ctrl pkts", "complete");

  struct Variant {
    const char* name;
    std::size_t interval;
    bool admission;
  };
  const Variant variants[] = {
      {"static, random senders", 0, false},
      {"adaptive, random senders", 25, false},
      {"adaptive, sketch admission", 25, true},
  };
  for (const auto& variant : variants) {
    auto run_config = config;
    run_config.reconfigure_interval = variant.interval;
    run_config.sketch_admission = variant.admission;
    const auto result = run_adaptive_overlay(run_config);
    std::printf("%-28s %12.1f %14zu %12zu %7zu/%zu\n", variant.name,
                result.mean_completion, result.last_completion,
                result.control_packets, result.completed_peers,
                config.peer_count);
  }

  std::printf("\nadaptation keeps the overlay alive under churn; sketches "
              "steer peers to novel content.\n");
  return 0;
}

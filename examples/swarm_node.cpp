// One peer process of a real-network swarm — and the simulator's oracle.
//
//   swarm_node --config swarm.cfg --node 2 --out node2.json \
//              --ready-file node2.ready --go-file go
//   swarm_node --config swarm.cfg --predict --out predict.json
//
// In node mode the process binds one non-blocking UDP socket per edge half
// it owns, signals readiness, waits for the harness's go-file barrier, and
// drives its protocol endpoints on core::EventLoop's wall-clock poll loop
// until its uploads served their quotas and its download finished. In
// predict mode it runs the identical per-edge script over in-process
// wire::Pipes and reports the byte totals a loss-free real run must hit
// exactly. tools/swarm_harness launches N node processes, one predict run,
// and diffs the two into BENCH_swarm.json.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/swarm.hpp"

namespace {

using namespace icd;

/// Tiny flat-JSON writer (examples stay free of bench/ headers).
class JsonOut {
 public:
  void add(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    fields_.emplace_back(key, buffer);
  }
  void add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add_string(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }

  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out << "  \"" << fields_[i].first << "\": " << fields_[i].second
          << (i + 1 < fields_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    return static_cast<bool>(out);
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

int run_predict(const core::SwarmSpec& spec, const std::string& out_path) {
  const core::SwarmPrediction prediction = core::predict_swarm(spec);
  JsonOut json;
  json.add_string("mode", "predict");
  json.add_string("strategy", core::swarm_strategy_key(spec.strategy));
  json.add("nodes", spec.nodes);
  json.add("edges", spec.edges.size());
  json.add("all_completed", std::size_t{prediction.all_completed ? 1u : 0u});
  json.add("ticks", prediction.ticks);
  std::size_t control_bytes = 0;
  std::size_t data_bytes = 0;
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    const std::string node = "node" + std::to_string(i);
    json.add(node + "_completed",
             std::size_t{prediction.completed[i] ? 1u : 0u});
    json.add(node + "_completion_tick", prediction.completion_tick[i]);
    json.add(node + "_symbols", prediction.final_symbols[i]);
  }
  for (std::size_t e = 0; e < prediction.edges.size(); ++e) {
    const auto& totals = prediction.edges[e];
    const std::string edge = "edge" + std::to_string(e);
    json.add(edge + "_control_bytes", totals.control_bytes);
    json.add(edge + "_control_frames", totals.control_frames);
    json.add(edge + "_data_bytes", totals.data_bytes);
    json.add(edge + "_data_frames", totals.data_frames);
    control_bytes += totals.control_bytes;
    data_bytes += totals.data_bytes;
  }
  json.add("total_control_bytes", control_bytes);
  json.add("total_data_bytes", data_bytes);
  json.add("handshake_retries", prediction.handshake_retries);
  json.add("shaped", std::size_t{spec.shaped() ? 1u : 0u});
  if (!json.write(out_path)) {
    std::fprintf(stderr, "swarm_node: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("predict: %s, %llu ticks, %zu control B, %zu data B -> %s\n",
              prediction.all_completed ? "all completed" : "INCOMPLETE",
              static_cast<unsigned long long>(prediction.ticks),
              control_bytes, data_bytes, out_path.c_str());
  return prediction.all_completed ? 0 : 2;
}

int run_node(const core::SwarmSpec& spec, std::size_t node,
             const std::string& out_path, const std::string& ready_file,
             const std::string& go_file, const std::string& progress_file) {
  const core::SwarmNodeReport report =
      core::run_swarm_node(spec, node, ready_file, go_file, progress_file);
  JsonOut json;
  json.add_string("mode", "node");
  json.add("node", report.node);
  json.add("completed", std::size_t{report.completed ? 1u : 0u});
  json.add("completion_tick", report.completion_tick);
  json.add("end_tick", report.end_tick);
  json.add("ticks_slept", report.ticks_slept);
  json.add("wall_ms", report.wall_ms);
  for (const auto& half : report.halves) {
    const std::string prefix = "edge" + std::to_string(half.edge_index) +
                               (half.sender_half ? "_sender" : "_receiver");
    json.add(prefix + "_control_bytes_sent", half.stats.control_bytes_sent);
    json.add(prefix + "_control_frames_sent", half.stats.control_frames_sent);
    json.add(prefix + "_data_bytes_sent", half.stats.data_bytes_sent);
    json.add(prefix + "_data_frames_sent", half.stats.data_frames_sent);
    json.add(prefix + "_messages_received", half.stats.messages_received);
    json.add(prefix + "_malformed_frames", half.stats.malformed_frames);
    json.add(prefix + "_frames_refused", half.stats.frames_refused);
    json.add(prefix + "_symbols_sent", half.symbols_sent);
    json.add(prefix + "_handshake_retries", half.handshake_retries);
    json.add(prefix + "_session_failed",
             std::size_t{half.session_failed ? 1u : 0u});
    json.add(prefix + "_pool_hit_rate", half.pool_hit_rate);
    json.add(prefix + "_datagrams_sent", half.udp.datagrams_sent);
    json.add(prefix + "_datagrams_received", half.udp.datagrams_received);
    json.add(prefix + "_deferred_sends", half.udp.deferred_sends);
    json.add(prefix + "_backlog_dropped", half.udp.backlog_dropped);
    json.add(prefix + "_refused_sends", half.udp.refused_sends);
    json.add(prefix + "_truncated_datagrams", half.udp.truncated_datagrams);
    json.add(prefix + "_injected_drops", half.udp.injected_drops);
    json.add(prefix + "_delayed_datagrams", half.udp.delayed_datagrams);
  }
  if (!json.write(out_path)) {
    std::fprintf(stderr, "swarm_node: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("node %zu: %s at tick %llu (end %llu, %.1f ms) -> %s\n",
              report.node, report.completed ? "completed" : "INCOMPLETE",
              static_cast<unsigned long long>(report.completion_tick),
              static_cast<unsigned long long>(report.end_tick), report.wall_ms,
              out_path.c_str());
  return report.completed ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string out_path = "swarm_node.json";
  std::string ready_file;
  std::string go_file;
  std::string progress_file;
  std::size_t node = 0;
  bool have_node = false;
  bool predict = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "swarm_node: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--config") config_path = value();
    else if (arg == "--out") out_path = value();
    else if (arg == "--ready-file") ready_file = value();
    else if (arg == "--go-file") go_file = value();
    else if (arg == "--progress-file") progress_file = value();
    else if (arg == "--node") { node = std::stoul(value()); have_node = true; }
    else if (arg == "--predict") predict = true;
    else {
      std::fprintf(stderr,
                   "usage: swarm_node --config FILE (--predict | --node I "
                   "[--ready-file F] [--go-file F] [--progress-file F]) "
                   "[--out FILE]\n");
      return 1;
    }
  }
  if (config_path.empty() || (!predict && !have_node)) {
    std::fprintf(stderr,
                 "swarm_node: --config plus --predict or --node required\n");
    return 1;
  }
  try {
    const core::SwarmSpec spec = core::SwarmSpec::parse_file(config_path);
    return predict
               ? run_predict(spec, out_path)
               : run_node(spec, node, out_path, ready_file, go_file,
                          progress_file);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "swarm_node: %s\n", error.what());
    return 1;
  }
}

// Quickstart: the digital fountain in five minutes.
//
// Encodes a file into a fountain stream, drops 30% of the symbols on the
// floor (an unreliable channel), and decodes the file from the survivors —
// demonstrating the loss resilience and decoding overhead of Section 2.3.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/origin.hpp"
#include "core/peer.hpp"
#include "util/random.hpp"

int main() {
  using namespace icd;

  // 1. Some content to deliver: 64 KB of pseudo-random bytes.
  util::Xoshiro256 rng(2026);
  std::vector<std::uint8_t> file(64 * 1024);
  for (auto& byte : file) byte = static_cast<std::uint8_t>(rng());

  // 2. An origin server: splits the file into 1 KB blocks and exposes it as
  //    an unbounded stream of encoded symbols.
  const std::size_t block_size = 1024;
  core::OriginServer origin(
      file, block_size,
      codec::DegreeDistribution::robust_soliton(file.size() / block_size),
      /*session_seed=*/42);
  std::printf("origin: %zu bytes -> %zu blocks of %zu bytes\n",
              origin.content_size(), origin.block_count(),
              origin.block_size());

  // 3. A client peer downloads over a channel that loses 30% of packets.
  core::Peer client("client", origin.parameters(),
                    codec::DegreeDistribution::robust_soliton(
                        origin.block_count()));
  std::size_t sent = 0, lost = 0;
  while (!client.has_content()) {
    const auto symbol = origin.next();
    ++sent;
    if (rng.next_bool(0.30)) {
      ++lost;
      continue;  // the fountain never retransmits; it just keeps flowing
    }
    client.receive_encoded(symbol);
  }

  // 4. Reconstruct and verify.
  const auto recovered = client.content(file.size());
  std::printf("channel: %zu symbols sent, %zu lost (%.0f%%)\n", sent, lost,
              100.0 * static_cast<double>(lost) / static_cast<double>(sent));
  std::printf("client:  decoded from %zu received symbols "
              "(decoding overhead %.1f%%)\n",
              client.symbol_count(),
              100.0 * (static_cast<double>(client.symbol_count()) /
                           static_cast<double>(origin.block_count()) -
                       1.0));
  std::printf("content %s\n", recovered == file ? "VERIFIED" : "CORRUPT");
  return recovered == file ? 0 : 1;
}

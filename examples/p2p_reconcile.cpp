// Peer-to-peer reconciliation walkthrough: the full Section 3 pipeline
// between two peers with partially overlapping working sets.
//
//   1. Coarse estimation — min-wise sketches (one 1 KB packet each way)
//      estimate the working-set overlap.
//   2. Fine-grained reconciliation — every mechanism in the library
//      (whole set, hashed set, Bloom filter, ART, CPI) computes the
//      set difference; wire size and accuracy are compared side by side.
//   3. Informed transfer — a Recode/BF session delivers the missing
//      symbols and the receiver decodes the file.
//
// Build & run:  ./examples/p2p_reconcile
#include <cstdio>
#include <vector>

#include "core/origin.hpp"
#include "core/peer.hpp"
#include "core/session.hpp"
#include "reconcile/reconciler.hpp"
#include "util/random.hpp"

int main() {
  using namespace icd;

  // Content and code shared by everyone in the session.
  util::Xoshiro256 rng(7);
  std::vector<std::uint8_t> file(32 * 1024);
  for (auto& byte : file) byte = static_cast<std::uint8_t>(rng());
  const std::size_t blocks = 512;
  core::OriginServer origin(
      file, file.size() / blocks,
      codec::DegreeDistribution::robust_soliton(blocks), 99);
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);

  // Alice and Bob each hold ~420 symbols, ~200 of them in common: neither
  // can decode alone (need ~1.05 * 512 = 540), together they can.
  core::Peer alice("alice", origin.parameters(), dist);
  core::Peer bob("bob", origin.parameters(), dist);
  for (int i = 0; i < 200; ++i) {
    const auto symbol = origin.next();
    alice.receive_encoded(symbol);
    bob.receive_encoded(symbol);
  }
  for (int i = 0; i < 220; ++i) alice.receive_encoded(origin.next());
  for (int i = 0; i < 220; ++i) bob.receive_encoded(origin.next());

  // --- 1. Coarse estimation (Section 4) ---------------------------------
  const double resemblance =
      sketch::MinwiseSketch::resemblance(alice.sketch(), bob.sketch());
  const double containment = sketch::containment_from_resemblance(
      resemblance, bob.symbol_count(), alice.symbol_count());
  std::printf("sketches: estimated resemblance %.3f (true %.3f), "
              "containment %.3f\n",
              resemblance, 200.0 / 640.0, containment);

  // --- 2. Fine-grained reconciliation shoot-out (Section 5) -------------
  std::printf("\n%-14s %12s %10s %10s\n", "method", "wire bytes", "packets",
              "found");
  const std::size_t true_difference = 220;  // alice-only symbols
  for (const auto method :
       {reconcile::Method::kWholeSet, reconcile::Method::kHashedSet,
        reconcile::Method::kBloomFilter, reconcile::Method::kArt,
        reconcile::Method::kCpi}) {
    reconcile::ReconcileOptions options;
    options.method = method;
    options.cpi_max_discrepancy = 512;
    const auto outcome =
        reconcile::reconcile(alice.symbol_ids(), bob.symbol_ids(), options);
    std::printf("%-14s %12zu %10zu %6zu/%zu\n",
                std::string(reconcile::method_name(method)).c_str(),
                outcome.summary_bytes, outcome.summary_packets,
                outcome.local_minus_remote.size(), true_difference);
  }

  // --- 3. Informed transfer (Recode/BF, Section 5.4) --------------------
  core::SessionOptions options;
  options.strategy = overlay::Strategy::kRecodeBloom;
  options.requested_symbols = 200;
  core::InformedSession session(/*sender=*/alice, /*receiver=*/bob, options);
  session.handshake();
  const auto& stats = session.run(/*target_symbols=*/560,
                                  /*max_transmissions=*/2000);
  std::printf("\ninformed transfer: %zu symbols sent, %zu useful, "
              "%zu control packets\n",
              stats.symbols_sent, stats.symbols_useful,
              stats.control_packets);
  std::printf("bob decoded: %s\n",
              bob.has_content() && bob.content(file.size()) == file
                  ? "VERIFIED"
                  : "incomplete");
  return bob.has_content() ? 0 : 1;
}
